package cache

// Delta weight broadcast. The parameter worker publishes each new
// policy version as a diff against the previous one under
// "weights.delta/<v>", plus periodic full snapshots under
// "weights/latest" and a tiny head pointer under "weights/head" naming
// the newest version. Subscribers (actors, learners) poll the head: an
// unchanged head skips the fetch entirely, a short gap is closed by
// fetching the missing deltas in one batched round trip, and anything
// else — missing head (legacy publisher), broken chain, pruned deltas,
// length change — falls back to the full snapshot. See DESIGN.md §10.3.
//
// Delta values are the NEW float64 bit patterns at the changed indices
// (never arithmetic differences), so a reconstruction is bit-identical
// to the published vector regardless of how many deltas it applied.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync/atomic"

	"stellaris/internal/obs/lineage"
)

const (
	// KeyWeightsLatest holds the most recent full weight snapshot. Legacy
	// readers that know nothing about deltas keep reading only this key.
	KeyWeightsLatest = "weights/latest"
	// KeyWeightsHead is the head pointer: a WeightsMsg with an empty
	// weight slab whose Version names the newest published version.
	KeyWeightsHead = "weights/head"
	// weightsDeltaPrefix prefixes per-version delta keys; the delta under
	// WeightsDeltaKey(v) takes a version v-1 vector to version v.
	weightsDeltaPrefix = "weights.delta/"
)

// WeightsDeltaKey returns the cache key of the delta producing version v.
func WeightsDeltaKey(v int) string {
	return weightsDeltaPrefix + strconv.Itoa(v)
}

// DeltaMsg is one version step of the weight vector: the values that
// changed between BaseVersion (= Version-1) and Version. A nil Indices
// with len(Values) == Len is the dense form — a full replacement used
// when most weights moved, which is the common case after an optimizer
// step.
type DeltaMsg struct {
	Version     int
	BaseVersion int
	// Len is the full vector length; a delta never resizes the vector.
	Len     int
	Indices []uint32
	Values  []float64
	// Trace is the causal-tracing context (see WeightsMsg.Trace).
	Trace lineage.Meta
}

// Dense reports whether d replaces the whole vector.
func (d *DeltaMsg) Dense() bool { return d.Indices == nil }

// BuildDelta diffs next against base (same length) and returns the
// sparse or dense delta taking baseVersion to version, whichever is
// smaller on the wire. Values are compared by bit pattern, so NaNs and
// signed zeros diff exactly.
func BuildDelta(version, baseVersion int, base, next []float64) (*DeltaMsg, error) {
	if len(base) != len(next) {
		return nil, fmt.Errorf("cache: delta base has %d weights, next has %d", len(base), len(next))
	}
	d := &DeltaMsg{Version: version, BaseVersion: baseVersion, Len: len(next)}
	nnz := 0
	for i := range next {
		if math.Float64bits(next[i]) != math.Float64bits(base[i]) {
			nnz++
		}
	}
	// Sparse costs 12 bytes per changed entry, dense 8 per entry.
	if 12*nnz >= 8*len(next) {
		d.Values = next
		return d, nil
	}
	d.Indices = make([]uint32, 0, nnz)
	d.Values = make([]float64, 0, nnz)
	for i := range next {
		if math.Float64bits(next[i]) != math.Float64bits(base[i]) {
			d.Indices = append(d.Indices, uint32(i))
			d.Values = append(d.Values, next[i])
		}
	}
	return d, nil
}

// Apply patches w (which must hold d.BaseVersion's values and length)
// in place to d.Version's values.
func (d *DeltaMsg) Apply(w []float64) error {
	if len(w) != d.Len {
		return fmt.Errorf("cache: delta v%d expects %d weights, have %d", d.Version, d.Len, len(w))
	}
	if d.Dense() {
		if len(d.Values) != d.Len {
			return fmt.Errorf("cache: dense delta v%d carries %d values for %d weights", d.Version, len(d.Values), d.Len)
		}
		copy(w, d.Values)
		return nil
	}
	for i, idx := range d.Indices {
		if int(idx) >= len(w) {
			return fmt.Errorf("cache: delta v%d index %d out of range [0,%d)", d.Version, idx, len(w))
		}
		w[idx] = d.Values[i]
	}
	return nil
}

// EncodeDelta encodes d in the binary codec (deltas have no gob form:
// they only exist on negotiated binary connections). The buffer may be
// returned to the frame pool with Recycle once handed off.
func EncodeDelta(d *DeltaMsg) ([]byte, error) {
	if !d.Dense() && len(d.Indices) != len(d.Values) {
		return nil, fmt.Errorf("cache: sparse delta has %d indices but %d values", len(d.Indices), len(d.Values))
	}
	body := 8 + 8 + 4 + 1
	if d.Dense() {
		body += 8 * len(d.Values)
	} else {
		body += 4 + 12*len(d.Indices)
	}
	tlv := metaTLVSize(&d.Trace)
	tlvOff := 0
	if tlv > 0 {
		tlvOff = binHeader + body
	}
	buf := grabFrame(binHeader + body + tlv)
	buf = appendBinHeader(buf, binKindDelta, tlvOff)
	buf = appendI64(buf, int64(d.Version))
	buf = appendI64(buf, int64(d.BaseVersion))
	buf = appendU32(buf, uint32(d.Len))
	if d.Dense() {
		buf = append(buf, 1)
		buf = appendF64Raw(buf, d.Values)
	} else {
		buf = append(buf, 0)
		buf = appendU32(buf, uint32(len(d.Indices)))
		for _, idx := range d.Indices {
			buf = appendU32(buf, idx)
		}
		buf = appendF64Raw(buf, d.Values)
	}
	if tlv > 0 {
		buf = appendMetaTLV(buf, &d.Trace)
	}
	return buf, nil
}

// DecodeDelta decodes a binary delta payload.
func DecodeDelta(b []byte) (*DeltaMsg, error) {
	kind, r, meta, err := openBin(b)
	if err != nil {
		return nil, err
	}
	if kind != binKindDelta {
		return nil, fmt.Errorf("cache: bincodec: payload kind %d is not a weights delta", kind)
	}
	d := &DeltaMsg{Trace: meta}
	d.Version = int(r.i64())
	d.BaseVersion = int(r.i64())
	d.Len = int(r.u32())
	dense := r.u8()
	const maxSlab = maxFrame / 8
	if r.err == nil && d.Len > maxSlab {
		r.fail("delta length %d exceeds the frame cap", d.Len)
	}
	switch dense {
	case 1:
		d.Values = r.f64Raw(d.Len)
	case 0:
		nnz := int(r.u32())
		if r.err == nil && (nnz > d.Len || nnz > r.remaining()/12) {
			r.fail("delta nnz %d exceeds length %d or %d remaining bytes", nnz, d.Len, r.remaining())
		}
		if raw := r.take(4 * nnz); raw != nil {
			d.Indices = make([]uint32, nnz)
			for i := range d.Indices {
				d.Indices[i] = binary.LittleEndian.Uint32(raw[4*i:])
			}
		}
		d.Values = r.f64Raw(nnz)
		if d.Indices == nil {
			d.Indices = []uint32{} // keep the sparse/dense distinction for nnz == 0
		}
	default:
		r.fail("unknown delta density flag %d", dense)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return d, nil
}

// ---- publisher ----

// WeightsPublisher publishes versioned weight vectors as delta chains:
// every Publish writes the delta from the previous published version,
// a full snapshot every SnapshotEvery versions, and finally the head
// pointer — all in one batched put, so a reader never observes a head
// that points past the data backing it. Old deltas beyond History are
// pruned. Not safe for concurrent use (the parameter worker owns it).
type WeightsPublisher struct {
	C Cache
	// SnapshotEvery is the full-snapshot period; the default 1 refreshes
	// "weights/latest" on every publish, so legacy full-fetch readers
	// never see stale weights. Larger values trade reader staleness
	// bounds for publisher bandwidth.
	SnapshotEvery int
	// History is how many trailing deltas stay in the cache (default 64);
	// subscribers further behind than this full-fetch instead.
	History int

	prev    []float64
	prevVer int
	hasPrev bool
}

// Publish stores version's weight vector. trace stamps the snapshot and
// delta payloads (the head pointer is an untraced internal key).
func (p *WeightsPublisher) Publish(version int, w []float64, trace lineage.Meta) error {
	snapEvery := p.SnapshotEvery
	if snapEvery <= 0 {
		snapEvery = 1
	}
	history := p.History
	if history <= 0 {
		history = 64
	}

	var kvs []KV
	var frames [][]byte
	// Delta first, snapshot second, head last: per-key fallback against
	// a legacy server preserves slice order, and a batched put lands
	// under one lock — either way the head never leads its data.
	wroteDelta := false
	if p.hasPrev && p.prevVer == version-1 && len(p.prev) == len(w) {
		d, err := BuildDelta(version, version-1, p.prev, w)
		if err != nil {
			return err
		}
		d.Trace = trace
		db, err := EncodeDelta(d)
		if err != nil {
			return err
		}
		kvs = append(kvs, KV{Key: WeightsDeltaKey(version), Val: db})
		frames = append(frames, db)
		wroteDelta = true
	}
	// A publish that emitted no delta (first publish, version gap after
	// a failed publish or restart, vector resize) MUST snapshot: the
	// head is about to advance, and without a delta the snapshot is the
	// only data that can back it. Skipping it here used to strand
	// subscribers thrashing on full fetches of a snapshot that never
	// reached the head's version.
	if version%snapEvery == 0 || !wroteDelta {
		sb, err := EncodeWeights(&WeightsMsg{Version: version, Weights: w, Trace: trace})
		if err != nil {
			return err
		}
		kvs = append(kvs, KV{Key: KeyWeightsLatest, Val: sb})
		frames = append(frames, sb)
	}
	hb, err := EncodeWeights(&WeightsMsg{Version: version})
	if err != nil {
		return err
	}
	kvs = append(kvs, KV{Key: KeyWeightsHead, Val: hb})
	frames = append(frames, hb)

	err = BatchPut(p.C, kvs)
	for _, f := range frames {
		Recycle(f)
	}
	if err != nil {
		// A partial publish may have landed; drop the delta base so the
		// next attempt re-snapshots instead of chaining onto uncertainty.
		p.hasPrev = false
		return err
	}
	if cap(p.prev) < len(w) {
		p.prev = make([]float64, len(w))
	}
	p.prev = p.prev[:len(w)]
	copy(p.prev, w)
	p.prevVer = version
	p.hasPrev = true
	_ = p.C.Delete(WeightsDeltaKey(version - history))
	return nil
}

// ---- subscriber ----

// WeightsSub incrementally tracks the published weight vector: Fetch
// reads the head pointer and, when the subscriber is within MaxChain
// versions, closes the gap with one batched delta fetch instead of
// re-downloading the full vector. A missing head (legacy publisher or
// gob mode), a broken or pruned chain, or any decode failure falls back
// to the full snapshot. Not safe for concurrent use (each worker owns
// one).
type WeightsSub struct {
	C Cache
	// MaxChain bounds how many deltas one Fetch will chase (default 32);
	// beyond it the full snapshot is cheaper.
	MaxChain int

	w   []float64
	ver int
	ok  bool

	// deltaHits/fullFetches instrument reconstruction for tests and the
	// perf quickstart; skipped counts head-unchanged shortcuts.
	deltaHits   atomic.Int64
	fullFetches atomic.Int64
	skipped     atomic.Int64
	regressions atomic.Int64
}

// SubStats reports how a subscriber has been reconstructing weights.
type SubStats struct {
	// DeltaHits counts Fetches resolved by applying deltas only;
	// FullFetches counts full-snapshot downloads; Skipped counts Fetches
	// answered from cache because the head had not moved.
	DeltaHits   int64
	FullFetches int64
	Skipped     int64
	// Regressions counts Fetches that observed the head pointer moving
	// BACKWARDS — the signature of a failover onto a follower (or a
	// restart from older persisted state) that lost recent publishes.
	// Each one resets the subscriber and re-fetches, so staleness
	// accounting restarts from the regressed version instead of
	// silently mixing old weights with new version numbers.
	Regressions int64
}

// Stats returns the subscriber's reconstruction counters.
func (s *WeightsSub) Stats() SubStats {
	return SubStats{
		DeltaHits:   s.deltaHits.Load(),
		FullFetches: s.fullFetches.Load(),
		Skipped:     s.skipped.Load(),
		Regressions: s.regressions.Load(),
	}
}

// Cached returns the last successfully fetched vector and its version.
// The slice is owned by the subscriber — callers must not mutate it or
// retain it across Fetches.
func (s *WeightsSub) Cached() ([]float64, int, bool) { return s.w, s.ver, s.ok }

// Reset drops the cached vector, forcing the next Fetch to go full.
func (s *WeightsSub) Reset() { s.w, s.ver, s.ok = nil, 0, false }

// Fetch returns the newest available weights and their version. The
// returned slice is owned by the subscriber: callers must copy it if
// they mutate or retain it past the next Fetch.
func (s *WeightsSub) Fetch() ([]float64, int, error) {
	maxChain := s.MaxChain
	if maxChain <= 0 {
		maxChain = 32
	}
	head, err := s.C.Get(KeyWeightsHead)
	if err != nil {
		var nf ErrNotFound
		if errors.As(err, &nf) {
			// Legacy publisher: no head pointer, only "weights/latest".
			return s.fetchFull(0, maxChain)
		}
		return nil, 0, err
	}
	hm, err := DecodeWeights(head)
	if err != nil {
		return s.fetchFull(0, maxChain)
	}
	hv := hm.Version
	if s.ok && hv == s.ver {
		s.skipped.Add(1)
		return s.w, s.ver, nil
	}
	if s.ok && hv < s.ver {
		// The head moved backwards: the publisher's store lost recent
		// versions (failover to a follower, restart from older persisted
		// state). The regressed head IS the current policy now — but it
		// must be adopted deliberately, not by silently overwriting a
		// newer cached vector as if versions only ever grew. Reset so the
		// refetch starts from nothing, and count it so live.Report can
		// surface that staleness accounting has a discontinuity.
		s.regressions.Add(1)
		s.Reset()
	}
	if s.ok && hv > s.ver && hv-s.ver <= maxChain && s.applyChain(hv) {
		s.deltaHits.Add(1)
		return s.w, s.ver, nil
	}
	return s.fetchFull(hv, maxChain)
}

// applyChain fetches the deltas (s.ver, hv] in one batched round trip
// and applies them in order. It reports whether the cached vector
// reached hv; on a partial or failed application the cached (w, ver)
// pair stays mutually consistent — s.ver only advances past deltas
// fully applied.
func (s *WeightsSub) applyChain(hv int) bool {
	keys := make([]string, 0, hv-s.ver)
	for v := s.ver + 1; v <= hv; v++ {
		keys = append(keys, WeightsDeltaKey(v))
	}
	vals, err := BatchGet(s.C, keys)
	if err != nil {
		return false
	}
	for _, raw := range vals {
		if raw == nil {
			return false // pruned or never published: chain is broken
		}
		d, err := DecodeDelta(raw)
		if err != nil || d.BaseVersion != s.ver || d.Version != s.ver+1 {
			return false
		}
		if err := d.Apply(s.w); err != nil {
			return false
		}
		s.ver = d.Version
	}
	return true
}

// fetchFull downloads the full snapshot, then — when the head pointer
// hv is ahead of it — tops up with the trailing deltas, accepting the
// snapshot's version if the chain cannot be closed.
func (s *WeightsSub) fetchFull(hv, maxChain int) ([]float64, int, error) {
	raw, err := s.C.Get(KeyWeightsLatest)
	if err != nil {
		return nil, 0, err
	}
	msg, err := DecodeWeights(raw)
	if err != nil {
		return nil, 0, err
	}
	s.w = append(s.w[:0], msg.Weights...)
	s.ver = msg.Version
	s.ok = true
	s.fullFetches.Add(1)
	if hv > s.ver && hv-s.ver <= maxChain {
		// Best effort: a snapshot older than the head (SnapshotEvery > 1)
		// is still a valid policy if the top-up chain has gaps.
		s.applyChain(hv)
	}
	return s.w, s.ver, nil
}
