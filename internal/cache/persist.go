// Durable MemCache state: snapshot + append-only op log.
//
// A persistent MemCache journals every mutation (Put/Delete/Incr) to an
// append-only file (AOF) and periodically compacts it into a full
// snapshot, so `stellaris-cached -persist <dir>` recovers its entire
// keyspace — values and counters — after a crash or restart. The layout
// in the persistence directory:
//
//	cache.snap  full state at the last compaction
//	            magic "STLSNAP1" | u32 version | u64 payloadLen
//	            | payload | u32 CRC-32(payload)
//	cache.aof   mutations since the snapshot, one record each:
//	            u32 bodyLen | body | u32 CRC-32(body)
//	            body = u8 op ('P'/'D'/'I') | u32 keyLen | key
//	                 | u32 valLen | val
//
// Recovery loads the snapshot, replays the AOF, and stops at the first
// torn or corrupt record — a crash mid-append loses at most the final
// record, never the keyspace. The torn tail is truncated away and the
// store compacts immediately so the next crash window starts clean.
//
// Appends are buffered and flushed to the OS per operation but only
// fsynced at compaction and Close: the durability target is process
// restarts and kills (the chaos suite's failure model), not power loss.
package cache

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"stellaris/internal/obs"
)

const (
	aofPut    byte = 'P'
	aofDelete byte = 'D'
	aofIncr   byte = 'I'
	// aofCounterSet stores an absolute counter value (8-byte big-endian
	// payload). Replication full-syncs emit it because replaying relative
	// 'I' increments against an unknown base is not idempotent; a
	// persistent follower then journals it, so AOF replay understands it
	// too.
	aofCounterSet byte = 'C'
	// aofReset clears the entire store. It opens every replication
	// full-sync (the follower may hold stale state from a previous
	// leader) and never appears in an AOF: a persistent store reacts to
	// it by compacting to an empty snapshot instead of journaling.
	aofReset byte = 'S'
)

const (
	snapMagic   = "STLSNAP1"
	snapVersion = 1
	snapName    = "cache.snap"
	aofName     = "cache.aof"

	// maxRecord bounds replay allocations (matches the protocol frame cap).
	maxRecord = 256 << 20

	// Compaction triggers: whichever of ops-since-snapshot or AOF bytes
	// trips first folds the log into a fresh snapshot.
	compactOps   = 16384
	compactBytes = 8 << 20
)

// persister owns the on-disk files. All methods are called with the
// owning MemCache's mutex held, so no internal locking is needed.
type persister struct {
	dir string
	aof *os.File
	bw  *bufio.Writer

	// ops and aofBytes track the live AOF since the last compaction.
	ops      int64
	aofBytes int64

	// replayed is the op count recovered at open, surfaced when
	// instrumentation attaches.
	replayed int64

	snapshots *obs.Counter
	replayedC *obs.Counter
	appendedC *obs.Counter
	aofBytesG *obs.Gauge
}

// NewPersistentMemCache opens (or creates) a durable MemCache backed by
// dir. Existing state is recovered — snapshot first, then the op log —
// and compacted before the store is returned.
func NewPersistentMemCache(dir string) (*MemCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: mkdir %s: %w", dir, err)
	}
	c := NewMemCache()
	p := &persister{dir: dir}

	if err := p.loadSnapshot(c); err != nil {
		return nil, err
	}
	replayed, err := p.replayAOF(c)
	if err != nil {
		return nil, err
	}
	p.replayed = replayed

	aof, err := os.OpenFile(filepath.Join(dir, aofName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cache: open aof: %w", err)
	}
	p.aof = aof
	p.bw = bufio.NewWriter(aof)
	c.p = p

	// Fold whatever was recovered into a fresh snapshot + empty log so
	// every open starts a clean crash window.
	c.mu.Lock()
	err = p.compact(c.data, c.counters)
	c.mu.Unlock()
	if err != nil {
		p.closeFiles()
		return nil, err
	}
	return c, nil
}

// InstrumentPersistence publishes the store's durability metrics into
// reg: snapshots written, ops replayed at recovery, ops appended, and
// the current AOF size. No-op for a non-persistent store.
func (c *MemCache) InstrumentPersistence(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.p == nil {
		return
	}
	c.p.snapshots = reg.Counter("cache_persist_snapshots_total", "snapshot compactions written")
	c.p.replayedC = reg.Counter("cache_persist_replayed_ops_total", "op-log records replayed at recovery")
	c.p.appendedC = reg.Counter("cache_persist_appended_ops_total", "mutations appended to the op log")
	c.p.aofBytesG = reg.Gauge("cache_persist_aof_bytes", "current append-only log size in bytes")
	c.p.replayedC.Add(c.p.replayed)
}

// Persistent reports whether the store journals to disk.
func (c *MemCache) Persistent() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.p != nil
}

// Close flushes and fsyncs the op log and detaches persistence; the
// store remains usable in-memory. Safe to call on a non-persistent
// store and safe to call twice.
func (c *MemCache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.p == nil {
		return nil
	}
	err := c.p.closeFiles()
	c.p = nil
	return err
}

// logLocked appends one mutation record and fans it out to any attached
// replication taps; called with c.mu held. Tap dispatch comes first so
// followers hear about a mutation even when its local journaling fails
// — memory is the source of truth, and the taps mirror memory. Nil
// persister (in-memory store) skips the journal.
func (c *MemCache) logLocked(op byte, key string, val []byte) error {
	c.tapLocked(op, key, val)
	if c.p == nil {
		return nil
	}
	if err := c.p.append(op, key, val); err != nil {
		return fmt.Errorf("cache: persist %c %q: %w", op, key, err)
	}
	if c.p.ops >= compactOps || c.p.aofBytes >= compactBytes {
		if err := c.p.compact(c.data, c.counters); err != nil {
			return fmt.Errorf("cache: compact: %w", err)
		}
	}
	return nil
}

// appendRecord appends one CRC-framed mutation record to b:
// u32 bodyLen | body | u32 CRC-32(body), body = u8 op | u32 keyLen |
// key | u32 valLen | val. The same framing is the AOF's on-disk format
// and the replication stream's payload format (replica.go), so a
// follower applies exactly what a crash recovery would replay.
func appendRecord(b []byte, op byte, key string, val []byte) []byte {
	blen := 1 + 4 + len(key) + 4 + len(val)
	b = binary.BigEndian.AppendUint32(b, uint32(blen))
	start := len(b)
	b = append(b, op)
	b = binary.BigEndian.AppendUint32(b, uint32(len(key)))
	b = append(b, key...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(val)))
	b = append(b, val...)
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
}

// scanRecord parses the CRC-framed record at the start of b. It returns
// the bytes consumed, or n == 0 when b does not start with a complete,
// checksum-valid record — torn tail and corruption look the same to the
// caller, which is the point: both AOF replay and the replication
// stream stop trusting the input there. The returned key and val alias
// b; callers that retain them must copy.
func scanRecord(b []byte) (op byte, key []byte, val []byte, n int) {
	if len(b) < 4 {
		return 0, nil, nil, 0
	}
	blen := int(binary.BigEndian.Uint32(b))
	if blen < 9 || blen > maxRecord || 4+blen+4 > len(b) {
		return 0, nil, nil, 0
	}
	body := b[4 : 4+blen]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(b[4+blen:]) {
		return 0, nil, nil, 0
	}
	op = body[0]
	kl := int(binary.BigEndian.Uint32(body[1:]))
	if 5+kl+4 > blen {
		return 0, nil, nil, 0
	}
	key = body[5 : 5+kl]
	vl := int(binary.BigEndian.Uint32(body[5+kl:]))
	if 5+kl+4+vl > blen {
		return 0, nil, nil, 0
	}
	val = body[5+kl+4 : 5+kl+4+vl]
	return op, key, val, 4 + blen + 4
}

func (p *persister) append(op byte, key string, val []byte) error {
	rec := appendRecord(make([]byte, 0, 4+1+4+len(key)+4+len(val)+4), op, key, val)
	if _, err := p.bw.Write(rec); err != nil {
		return err
	}
	if err := p.bw.Flush(); err != nil {
		return err
	}
	p.ops++
	p.aofBytes += int64(len(rec))
	if p.appendedC != nil {
		p.appendedC.Inc()
		p.aofBytesG.Set(float64(p.aofBytes))
	}
	return nil
}

// compact writes a full snapshot of the given state and truncates the
// op log. Called with the owning cache's mutex held.
func (p *persister) compact(data map[string][]byte, counters map[string]int64) error {
	if err := p.writeSnapshot(data, counters); err != nil {
		return err
	}
	if p.aof != nil {
		if err := p.aof.Truncate(0); err != nil {
			return err
		}
		if _, err := p.aof.Seek(0, io.SeekStart); err != nil {
			return err
		}
		if err := p.aof.Sync(); err != nil {
			return err
		}
		p.bw.Reset(p.aof)
	}
	p.ops = 0
	p.aofBytes = 0
	if p.snapshots != nil {
		p.snapshots.Inc()
		p.aofBytesG.Set(0)
	}
	return nil
}

func (p *persister) writeSnapshot(data map[string][]byte, counters map[string]int64) error {
	payload := make([]byte, 0, 1024)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(data)))
	for k, v := range data {
		payload = binary.BigEndian.AppendUint32(payload, uint32(len(k)))
		payload = append(payload, k...)
		payload = binary.BigEndian.AppendUint32(payload, uint32(len(v)))
		payload = append(payload, v...)
	}
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(counters)))
	for k, v := range counters {
		payload = binary.BigEndian.AppendUint32(payload, uint32(len(k)))
		payload = append(payload, k...)
		payload = binary.BigEndian.AppendUint64(payload, uint64(v))
	}

	out := make([]byte, 0, len(snapMagic)+4+8+len(payload)+4)
	out = append(out, snapMagic...)
	out = binary.BigEndian.AppendUint32(out, snapVersion)
	out = binary.BigEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))

	path := filepath.Join(p.dir, snapName)
	tmp, err := os.CreateTemp(p.dir, ".snap-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if d, err := os.Open(p.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// loadSnapshot restores the snapshot file into c, if one exists. A
// corrupt snapshot is an error: the AOF is relative to it, so silently
// starting empty would resurrect deleted keys on replay.
func (p *persister) loadSnapshot(c *MemCache) error {
	b, err := os.ReadFile(filepath.Join(p.dir, snapName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cache: read snapshot: %w", err)
	}
	hdr := len(snapMagic) + 4 + 8
	if len(b) < hdr+4 || string(b[:len(snapMagic)]) != snapMagic {
		return errors.New("cache: snapshot corrupt (bad header)")
	}
	if v := binary.BigEndian.Uint32(b[len(snapMagic):]); v != snapVersion {
		return fmt.Errorf("cache: snapshot version %d unsupported", v)
	}
	plen := binary.BigEndian.Uint64(b[len(snapMagic)+4:])
	if plen > maxRecord || hdr+int(plen)+4 != len(b) {
		return errors.New("cache: snapshot corrupt (bad length)")
	}
	payload := b[hdr : hdr+int(plen)]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(b[hdr+int(plen):]) {
		return errors.New("cache: snapshot corrupt (checksum mismatch)")
	}

	off := 0
	u32 := func() (uint32, bool) {
		if off+4 > len(payload) {
			return 0, false
		}
		v := binary.BigEndian.Uint32(payload[off:])
		off += 4
		return v, true
	}
	str := func(n uint32) (string, bool) {
		if off+int(n) > len(payload) {
			return "", false
		}
		s := string(payload[off : off+int(n)])
		off += int(n)
		return s, true
	}
	corrupt := errors.New("cache: snapshot corrupt (truncated payload)")

	nd, ok := u32()
	if !ok {
		return corrupt
	}
	for i := uint32(0); i < nd; i++ {
		kl, ok := u32()
		if !ok {
			return corrupt
		}
		k, ok := str(kl)
		if !ok {
			return corrupt
		}
		vl, ok := u32()
		if !ok || off+int(vl) > len(payload) {
			return corrupt
		}
		c.data[k] = append([]byte(nil), payload[off:off+int(vl)]...)
		off += int(vl)
	}
	nc, ok := u32()
	if !ok {
		return corrupt
	}
	for i := uint32(0); i < nc; i++ {
		kl, ok := u32()
		if !ok {
			return corrupt
		}
		k, ok := str(kl)
		if !ok {
			return corrupt
		}
		if off+8 > len(payload) {
			return corrupt
		}
		c.counters[k] = int64(binary.BigEndian.Uint64(payload[off:]))
		off += 8
	}
	return nil
}

// replayAOF applies the op log on top of the snapshot state, stopping at
// the first torn or corrupt record and truncating the file there. It
// returns the number of records applied.
func (p *persister) replayAOF(c *MemCache) (int64, error) {
	path := filepath.Join(p.dir, aofName)
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("cache: read aof: %w", err)
	}

	var applied int64
	off := 0
	for {
		op, kb, val, n := scanRecord(b[off:])
		if n == 0 {
			break // clean end or torn tail
		}
		key := string(kb)
		switch op {
		case aofPut:
			c.data[key] = append([]byte(nil), val...)
		case aofDelete:
			delete(c.data, key)
			delete(c.counters, key)
		case aofIncr:
			c.counters[key]++
		case aofCounterSet:
			if len(val) != 8 {
				return applied, truncateTo(path, off)
			}
			c.counters[key] = int64(binary.BigEndian.Uint64(val))
		default:
			// Unknown op: treat as corruption, stop here.
			return applied, truncateTo(path, off)
		}
		off += n
		applied++
	}
	if off < len(b) {
		if err := truncateTo(path, off); err != nil {
			return applied, err
		}
	}
	return applied, nil
}

func truncateTo(path string, n int) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("cache: truncate torn aof: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(int64(n)); err != nil {
		return fmt.Errorf("cache: truncate torn aof: %w", err)
	}
	return f.Sync()
}

func (p *persister) closeFiles() error {
	if p.aof == nil {
		return nil
	}
	err := p.bw.Flush()
	if serr := p.aof.Sync(); err == nil {
		err = serr
	}
	if cerr := p.aof.Close(); err == nil {
		err = cerr
	}
	p.aof = nil
	return err
}
