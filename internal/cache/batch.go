package cache

// Batched cache operations: PutN stores N key/value pairs and GetN
// fetches N keys in one protocol round trip each, amortizing the
// per-op frame and syscall cost that dominates small-payload traffic
// (actors flushing trajectories, learners assembling batches).
//
// Protocol extension (see DESIGN.md §10): op 'p' carries a PutN blob
// and op 'g' a GetN request in the frame's value field; the key field
// is unused. Blobs are big-endian like the rest of the frame layer.
//
//	PutN request blob:  u32 count, then count × [u32 keyLen][key][u32 valLen][val]
//	GetN request blob:  u32 count, then count × [u32 keyLen][key]
//	GetN response blob: u32 count, then count × [u8 found][u32 valLen][val]
//
// Batch ops (and op 'V', the feature hello) are negotiated: a client
// that reaches an old server falls back to per-key loops, so mixed
// deployments keep working.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"stellaris/internal/obs/lineage"
)

// KV is one key/value pair in a batched put.
type KV struct {
	Key string
	Val []byte
}

// Batcher is implemented by caches that support batched operations
// natively. BatchPut/BatchGet use it when present and fall back to
// per-key loops otherwise.
type Batcher interface {
	// PutN stores every pair, replacing previous values.
	PutN(kvs []KV) error
	// GetN returns one entry per key, aligned with keys; missing keys
	// yield a nil entry (not an error).
	GetN(keys []string) ([][]byte, error)
}

// BatchPut stores kvs through c, batching when c implements Batcher.
func BatchPut(c Cache, kvs []KV) error {
	if b, ok := c.(Batcher); ok {
		return b.PutN(kvs)
	}
	for _, kv := range kvs {
		if err := c.Put(kv.Key, kv.Val); err != nil {
			return err
		}
	}
	return nil
}

// BatchGet fetches keys through c, batching when c implements Batcher.
// Missing keys yield nil entries.
func BatchGet(c Cache, keys []string) ([][]byte, error) {
	if b, ok := c.(Batcher); ok {
		return b.GetN(keys)
	}
	out := make([][]byte, len(keys))
	for i, k := range keys {
		v, err := c.Get(k)
		if err != nil {
			var nf ErrNotFound
			if errors.As(err, &nf) {
				continue
			}
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ---- MemCache ----

// PutN implements Batcher under a single lock acquisition.
func (c *MemCache) PutN(kvs []KV) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	for _, kv := range kvs {
		cp := make([]byte, len(kv.Val))
		copy(cp, kv.Val)
		c.data[kv.Key] = cp
		if err := c.logLocked(aofPut, kv.Key, cp); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// GetN implements Batcher under a single lock acquisition.
func (c *MemCache) GetN(keys []string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, k := range keys {
		if v, ok := c.data[k]; ok {
			cp := make([]byte, len(v))
			copy(cp, v)
			out[i] = cp
		}
	}
	return out, nil
}

// ---- wire blobs ----

const (
	minPutNRec    = 8 // empty key + empty value
	minGetNReqRec = 4 // empty key
	minGetNRspRec = 5 // found byte + empty value
)

func putNBlobSize(kvs []KV) int {
	n := 4
	for _, kv := range kvs {
		n += 8 + len(kv.Key) + len(kv.Val)
	}
	return n
}

func appendPutNBlob(b []byte, kvs []KV) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(kvs)))
	for _, kv := range kvs {
		b = binary.BigEndian.AppendUint32(b, uint32(len(kv.Key)))
		b = append(b, kv.Key...)
		b = binary.BigEndian.AppendUint32(b, uint32(len(kv.Val)))
		b = append(b, kv.Val...)
	}
	return b
}

// blobCursor reads length-prefixed fields out of a batch blob with the
// same validate-before-allocate discipline as binReader.
type blobCursor struct {
	b   []byte
	err error
}

func (c *blobCursor) u32(what string) int {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 4 {
		c.err = fmt.Errorf("cache: batch blob: truncated %s", what)
		return 0
	}
	v := int(binary.BigEndian.Uint32(c.b))
	c.b = c.b[4:]
	return v
}

func (c *blobCursor) bytes(n int, what string) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || n > len(c.b) {
		c.err = fmt.Errorf("cache: batch blob: %s length %d exceeds %d remaining", what, n, len(c.b))
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

func (c *blobCursor) u8(what string) byte {
	if v := c.bytes(1, what); v != nil {
		return v[0]
	}
	return 0
}

func (c *blobCursor) count(what string, minRec int) int {
	n := c.u32(what)
	if c.err == nil && n > len(c.b)/minRec {
		c.err = fmt.Errorf("cache: batch blob: %s count %d exceeds %d remaining bytes", what, n, len(c.b))
		return 0
	}
	return n
}

func (c *blobCursor) finish() error {
	if c.err == nil && len(c.b) != 0 {
		c.err = fmt.Errorf("cache: batch blob: %d trailing bytes", len(c.b))
	}
	return c.err
}

func parsePutNBlob(b []byte) ([]KV, error) {
	cur := &blobCursor{b: b}
	n := cur.count("putn count", minPutNRec)
	kvs := make([]KV, 0, n)
	for i := 0; i < n && cur.err == nil; i++ {
		key := string(cur.bytes(cur.u32("key length"), "key"))
		val := cur.bytes(cur.u32("value length"), "value")
		kvs = append(kvs, KV{Key: key, Val: val})
	}
	if err := cur.finish(); err != nil {
		return nil, err
	}
	return kvs, nil
}

func getNReqSize(keys []string) int {
	n := 4
	for _, k := range keys {
		n += 4 + len(k)
	}
	return n
}

func appendGetNReq(b []byte, keys []string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(keys)))
	for _, k := range keys {
		b = binary.BigEndian.AppendUint32(b, uint32(len(k)))
		b = append(b, k...)
	}
	return b
}

func parseGetNReq(b []byte) ([]string, error) {
	cur := &blobCursor{b: b}
	n := cur.count("getn count", minGetNReqRec)
	keys := make([]string, 0, n)
	for i := 0; i < n && cur.err == nil; i++ {
		keys = append(keys, string(cur.bytes(cur.u32("key length"), "key")))
	}
	if err := cur.finish(); err != nil {
		return nil, err
	}
	return keys, nil
}

func getNRespSize(vals [][]byte) int {
	n := 4
	for _, v := range vals {
		n += 5 + len(v)
	}
	return n
}

func appendGetNResp(b []byte, vals [][]byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(vals)))
	for _, v := range vals {
		if v == nil {
			b = append(b, 0)
			b = binary.BigEndian.AppendUint32(b, 0)
			continue
		}
		b = append(b, 1)
		b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
		b = append(b, v...)
	}
	return b
}

func parseGetNResp(b []byte, want int) ([][]byte, error) {
	cur := &blobCursor{b: b}
	n := cur.count("getn response count", minGetNRspRec)
	if cur.err == nil && n != want {
		return nil, fmt.Errorf("cache: batch blob: getn response count %d != %d requested", n, want)
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n && cur.err == nil; i++ {
		found := cur.u8("found flag")
		val := cur.bytes(cur.u32("value length"), "value")
		if found != 0 {
			// Detach from the response buffer so entries are independently
			// retainable, matching Get's contract.
			cp := make([]byte, len(val))
			copy(cp, val)
			out = append(out, cp)
		} else {
			out = append(out, nil)
		}
	}
	if err := cur.finish(); err != nil {
		return nil, err
	}
	return out, nil
}

// ---- Client ----

// PutN implements Batcher over the network: one 'p' round trip on a
// negotiated connection, a per-key loop against legacy servers.
func (c *Client) PutN(kvs []KV) error {
	if len(kvs) == 0 {
		return nil
	}
	if len(kvs) == 1 || !c.modern() {
		for _, kv := range kvs {
			if err := c.Put(kv.Key, kv.Val); err != nil {
				return err
			}
		}
		return nil
	}
	blob := appendPutNBlob(grabFrame(putNBlobSize(kvs)), kvs)
	status, payload, err := c.roundTrip('p', "", blob)
	Recycle(blob)
	if err == nil && status == '!' && legacyUnknownOp(payload) {
		// The server at this address stopped speaking batch ops (bounced
		// onto an old build mid-run); remember and fall back. Only the
		// "unknown op" answer means legacy — a modern server's batch
		// validation also answers '!', and retrying THAT per-key would
		// misfile a bad batch as a protocol downgrade.
		c.peer.Store(peerLegacy)
		for _, kv := range kvs {
			if err := c.Put(kv.Key, kv.Val); err != nil {
				return err
			}
		}
		return nil
	}
	if err := respErr(status, payload, err, "(putn)"); err != nil {
		return err
	}
	for _, kv := range kvs {
		c.lineageHop(lineage.HopPut, kv.Key)
	}
	return nil
}

// GetN implements Batcher over the network: one 'g' round trip on a
// negotiated connection, a per-key loop against legacy servers.
// Missing keys yield nil entries.
func (c *Client) GetN(keys []string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if len(keys) == 1 || !c.modern() {
		return c.getNLoop(keys)
	}
	blob := appendGetNReq(grabFrame(getNReqSize(keys)), keys)
	status, payload, err := c.roundTrip('g', "", blob)
	Recycle(blob)
	if err == nil && status == '!' && legacyUnknownOp(payload) {
		c.peer.Store(peerLegacy)
		return c.getNLoop(keys)
	}
	if err != nil {
		return nil, err
	}
	if status != '+' {
		return nil, errors.New(string(payload))
	}
	vals, err := parseGetNResp(payload, len(keys))
	if err != nil {
		return nil, err
	}
	for i, v := range vals {
		if v != nil {
			c.lineageHop(lineage.HopFetched, keys[i])
		}
	}
	return vals, nil
}

// legacyUnknownOp reports whether a '!' payload is a legacy server's
// unknown-op answer (Server.handle's default arm, and the shape old
// builds produced) as opposed to a modern server rejecting this
// specific request (parse failure, empty-key validation).
func legacyUnknownOp(payload []byte) bool {
	return bytes.HasPrefix(payload, []byte("unknown op"))
}

func (c *Client) getNLoop(keys []string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	for i, k := range keys {
		v, err := c.Get(k)
		if err != nil {
			var nf ErrNotFound
			if errors.As(err, &nf) {
				continue
			}
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
