package cache

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"stellaris/internal/cache/cluster"
	"stellaris/internal/leaktest"
)

// startCluster stands up n leader servers (each with an optional
// follower replicating it) and returns the topology plus the backing
// pieces for fault injection.
type testCluster struct {
	topo      *cluster.Topology
	leaders   []*Server
	followers []*Server
	replicas  []*Replica
	stores    []*MemCache
}

func startTestCluster(t *testing.T, n int, withFollowers bool) *testCluster {
	t.Helper()
	tc := &testCluster{topo: &cluster.Topology{Version: 1}}
	for i := 0; i < n; i++ {
		store := NewMemCache()
		srv, addr := startLeader(t, store)
		tc.stores = append(tc.stores, store)
		tc.leaders = append(tc.leaders, srv)
		sh := cluster.Shard{ID: i, Addr: addr}
		if withFollowers {
			fstore := NewMemCache()
			fsrv, faddr := startLeader(t, fstore)
			rep := NewReplica(fstore, addr, fastReplicaOpts())
			rep.Start()
			tc.followers = append(tc.followers, fsrv)
			tc.replicas = append(tc.replicas, rep)
			sh.Follower = faddr
		}
		tc.topo = &cluster.Topology{Version: 1, Shards: append(tc.topo.Shards, sh)}
	}
	t.Cleanup(func() {
		for _, r := range tc.replicas {
			r.Stop()
		}
		for _, s := range tc.leaders {
			s.Close()
		}
		for _, s := range tc.followers {
			s.Close()
		}
	})
	return tc
}

func TestShardedClientBasicOps(t *testing.T) {
	leaktest.Check(t)
	tc := startTestCluster(t, 3, false)
	sc, err := DialSharded(tc.topo, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	const n = 64
	for i := 0; i < n; i++ {
		if err := sc.Put(fmt.Sprintf("traj/%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Every key readable back, and the data actually spread out.
	spread := 0
	for _, st := range tc.stores {
		if l, _ := st.Len(); l > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("64 keys landed on %d/3 shards", spread)
	}
	for i := 0; i < n; i++ {
		v, err := sc.Get(fmt.Sprintf("traj/%d", i))
		if err != nil || !bytes.Equal(v, []byte(fmt.Sprintf("v%d", i))) {
			t.Fatalf("Get traj/%d = %q, %v", i, v, err)
		}
	}
	if _, err := sc.Get("traj/missing"); err == nil {
		t.Fatal("Get of missing key succeeded")
	}

	// Keys merges sorted across shards; Len sums.
	keys, err := sc.Keys("traj/")
	if err != nil || len(keys) != n {
		t.Fatalf("Keys: %d keys, %v", len(keys), err)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys not sorted/deduped at %d: %q >= %q", i, keys[i-1], keys[i])
		}
	}
	if l, err := sc.Len(); err != nil || l != n {
		t.Fatalf("Len = %d, %v", l, err)
	}

	// Incr routes consistently: all increments of one key hit one shard.
	for i := 0; i < 3; i++ {
		if _, err := sc.Incr("updates"); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := sc.Incr("updates"); err != nil || v != 4 {
		t.Fatalf("Incr = %d, %v", v, err)
	}

	if err := sc.Delete("traj/0"); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Get("traj/0"); err == nil {
		t.Fatal("deleted key still readable")
	}
}

func TestShardedClientBatchOps(t *testing.T) {
	tc := startTestCluster(t, 3, false)
	sc, err := DialSharded(tc.topo, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	kvs := make([]KV, 40)
	keys := make([]string, 40)
	for i := range kvs {
		keys[i] = fmt.Sprintf("grad/%d", i)
		kvs[i] = KV{Key: keys[i], Val: []byte(fmt.Sprintf("g%d", i))}
	}
	if err := sc.PutN(kvs); err != nil {
		t.Fatal(err)
	}
	keys = append(keys, "grad/none")
	vals, err := sc.GetN(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 41 || vals[40] != nil {
		t.Fatalf("GetN shape: %d vals, missing=%v", len(vals), vals[40])
	}
	for i := 0; i < 40; i++ {
		if !bytes.Equal(vals[i], []byte(fmt.Sprintf("g%d", i))) {
			t.Fatalf("GetN[%d] = %q", i, vals[i])
		}
	}
}

func TestShardedClientTopologyKeyOnEveryShard(t *testing.T) {
	tc := startTestCluster(t, 3, false)
	sc, err := DialSharded(tc.topo, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	if err := sc.PublishTopology(tc.topo); err != nil {
		t.Fatal(err)
	}
	// The document must exist on every shard, so losing any one shard
	// cannot lose the shard map.
	for i, st := range tc.stores {
		if _, err := st.Get(cluster.TopologyKey); err != nil {
			t.Fatalf("shard %d missing topology doc: %v", i, err)
		}
	}
	got, err := sc.FetchTopology()
	if err != nil || got.Version != 1 || len(got.Shards) != 3 {
		t.Fatalf("FetchTopology: %+v, %v", got, err)
	}
	// Keys must dedupe the replicated doc.
	ks, err := sc.Keys("sys/")
	if err != nil || len(ks) != 1 || ks[0] != cluster.TopologyKey {
		t.Fatalf("Keys(sys/) = %v, %v", ks, err)
	}
}

func TestShardedClientFailoverToFollower(t *testing.T) {
	leaktest.Check(t)
	tc := startTestCluster(t, 3, true)
	opts := DialOptions{OpTimeout: 200 * time.Millisecond, Attempts: 2, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond, DialTimeout: time.Second}
	sc, err := DialSharded(tc.topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	const n = 48
	for i := 0; i < n; i++ {
		if err := sc.Put(fmt.Sprintf("traj/%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Let every follower catch up before the kill.
	for i, st := range tc.stores {
		want, _ := st.Len()
		i := i
		waitFor(t, 5*time.Second, func() error {
			rs := tc.replicas[i].Stats()
			if rs.FullSyncs < 1 || int(rs.Records) < want {
				return fmt.Errorf("follower %d behind: %+v want >=%d records", i, rs, want)
			}
			return nil
		})
	}

	// Hard-kill shard 1's leader and freeze its follower at the last
	// applied record (crash-stop + promote).
	tc.replicas[1].Promote()
	if err := tc.leaders[1].Close(); err != nil {
		t.Fatal(err)
	}

	// Every key must still be readable: shard 1's keys via its promoted
	// follower, the rest untouched. Writes must land too.
	for i := 0; i < n; i++ {
		v, err := sc.Get(fmt.Sprintf("traj/%d", i))
		if err != nil || !bytes.Equal(v, []byte(fmt.Sprintf("v%d", i))) {
			t.Fatalf("post-kill Get traj/%d = %q, %v", i, v, err)
		}
	}
	for i := 0; i < n; i++ {
		if err := sc.Put(fmt.Sprintf("traj/post/%d", i), []byte("p")); err != nil {
			t.Fatalf("post-kill Put: %v", err)
		}
	}
	st := sc.ShardedStats()
	if st.Failovers < 1 {
		t.Fatalf("no failover recorded: %+v", st)
	}
	if st.TopologyVersion < 2 {
		t.Fatalf("promotion did not bump topology: %+v", st)
	}
	// The promotion was published: a fetch shows the follower as leader.
	got, err := sc.FetchTopology()
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards[1].Addr != tc.topo.Shards[1].Follower {
		t.Fatalf("published topology still names dead leader: %+v", got.Shards[1])
	}
}

func TestShardedClientNoFollowerErrorsSurface(t *testing.T) {
	tc := startTestCluster(t, 2, false)
	opts := DialOptions{OpTimeout: 100 * time.Millisecond, Attempts: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond, DialTimeout: 200 * time.Millisecond}
	sc, err := DialSharded(tc.topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if err := tc.leaders[0].Close(); err != nil {
		t.Fatal(err)
	}
	// Find a key owned by the dead shard 0 and verify the error is a
	// TransportError (no follower to absorb it).
	for i := 0; ; i++ {
		key := fmt.Sprintf("traj/%d", i)
		if sc.slotFor(key) != sc.slots[0] {
			continue
		}
		err := sc.Put(key, []byte("x"))
		var te *TransportError
		if err == nil || !errors.As(err, &te) {
			t.Fatalf("Put to dead followerless shard: %v", err)
		}
		return
	}
}

func TestShardedClientTopologyWatchAdoptsNewerVersion(t *testing.T) {
	leaktest.Check(t)
	tc := startTestCluster(t, 2, true)
	sc, err := DialSharded(tc.topo, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	sc.StartTopologyWatch(10 * time.Millisecond)

	// Simulate another client promoting shard 0: publish a bumped
	// topology directly to the cluster and wait for the watch to adopt.
	tc.replicas[0].Promote()
	bumped := tc.topo.Clone()
	bumped.Version = 5
	bumped.Shards[0].Addr = tc.topo.Shards[0].Follower
	bumped.Shards[0].Follower = ""
	b, err := bumped.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Write to shard 1's store directly (shard 0's old leader also gets
	// it, but the point is any surviving shard can serve it).
	if err := tc.stores[1].Put(cluster.TopologyKey, b); err != nil {
		t.Fatal(err)
	}
	if err := tc.stores[0].Put(cluster.TopologyKey, b); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() error {
		if v := sc.ShardedStats().TopologyVersion; v != 5 {
			return fmt.Errorf("topology version %d, want 5", v)
		}
		return nil
	})
	// After adoption, shard 0 ops go to the promoted follower.
	sc.slots[0].mu.Lock()
	addr := sc.slots[0].addr
	sc.slots[0].mu.Unlock()
	if addr != bumped.Shards[0].Addr {
		t.Fatalf("slot 0 still at %s after adopting topology naming %s", addr, bumped.Shards[0].Addr)
	}
}

func TestShardedClientRejectsReshardingTopology(t *testing.T) {
	tc := startTestCluster(t, 2, false)
	sc, err := DialSharded(tc.topo, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	bad := tc.topo.Clone()
	bad.Version = 9
	bad.Shards = bad.Shards[:1]
	if err := sc.adopt(bad); err == nil {
		t.Fatal("adopt accepted a shard-count change")
	}
	badIDs := tc.topo.Clone()
	badIDs.Version = 9
	badIDs.Shards[1].ID = 99
	if err := sc.adopt(badIDs); err == nil {
		t.Fatal("adopt accepted a shard-id change")
	}
}

// ---- wire-identical interop ----

// recordingProxy relays bytes between a client and a server, capturing
// the client→server stream.
type recordingProxy struct {
	ln net.Listener

	mu  sync.Mutex
	buf bytes.Buffer
}

func startRecordingProxy(t *testing.T, backend string) (string, *recordingProxy) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &recordingProxy{ln: ln}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				up, err := net.Dial("tcp", backend)
				if err != nil {
					return
				}
				defer up.Close()
				done := make(chan struct{}, 2)
				go func() { _, _ = io.Copy(conn, up); done <- struct{}{} }()
				go func() {
					_, _ = io.Copy(io.MultiWriter(up, synced{p}), conn)
					done <- struct{}{}
				}()
				<-done
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String(), p
}

type synced struct{ p *recordingProxy }

func (s synced) Write(b []byte) (int, error) {
	s.p.mu.Lock()
	defer s.p.mu.Unlock()
	return s.p.buf.Write(b)
}

func (p *recordingProxy) bytes() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]byte(nil), p.buf.Bytes()...)
}

// TestInteropShardedSingleShardWireIdentical: a ShardedClient over a
// degenerate 1-shard topology must emit byte-for-byte the same request
// stream as today's single Client for the same op sequence — the
// contract that makes the cluster layer a pure superset (and keeps
// lockstep runs on a 1-shard topology bit-identical to the
// single-process baseline).
func TestInteropShardedSingleShardWireIdentical(t *testing.T) {
	script := func(c Conn) error {
		if err := c.Put("traj/1", []byte("one")); err != nil {
			return err
		}
		if _, err := c.Get("traj/1"); err != nil {
			return err
		}
		if err := c.PutN([]KV{{Key: "grad/a", Val: []byte("ga")}, {Key: "grad/b", Val: []byte("gb")}}); err != nil {
			return err
		}
		if _, err := c.GetN([]string{"grad/a", "grad/b", "nope"}); err != nil {
			return err
		}
		if _, err := c.Incr("updates"); err != nil {
			return err
		}
		if _, err := c.Keys("traj/"); err != nil {
			return err
		}
		if _, err := c.Len(); err != nil {
			return err
		}
		if err := c.Delete("traj/1"); err != nil {
			return err
		}
		if c.PayloadCodec() != CodecBinary {
			return fmt.Errorf("codec downgraded unexpectedly")
		}
		// The reserved topology key rides the same wire ops on one shard.
		if err := c.Put(cluster.TopologyKey, []byte(`{"version":1,"shards":[{"id":0,"addr":"x"}]}`)); err != nil {
			return err
		}
		_, err := c.Get(cluster.TopologyKey)
		return err
	}

	capture := func(dial func(addr string) (Conn, error)) []byte {
		srv := NewServer(nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		paddr, proxy := startRecordingProxy(t, addr)
		c, err := dial(paddr)
		if err != nil {
			t.Fatal(err)
		}
		if err := script(c); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		return proxy.bytes()
	}

	single := capture(func(addr string) (Conn, error) { return Dial(addr) })
	sharded := capture(func(addr string) (Conn, error) {
		return DialSharded(&cluster.Topology{Version: 1, Shards: []cluster.Shard{{ID: 0, Addr: addr}}}, DialOptions{})
	})
	if !bytes.Equal(single, sharded) {
		t.Fatalf("wire streams differ: single %d bytes, sharded %d bytes", len(single), len(sharded))
	}
	if len(single) == 0 {
		t.Fatal("proxy captured nothing")
	}
}
