package cache

// Term-fenced writes (DESIGN.md §11.5): every data-plane write can be
// stamped with the shard term the writer believes current. A server
// that has learned a newer term — from a topology-document write or a
// higher-termed envelope — answers status 'F' instead of applying the
// write, which surfaces here as *ErrFenced. That is the split-brain
// guard: after a promotion bumps the term, a deposed leader can still
// be reachable, but it can no longer silently accept writes from
// clients holding the pre-promotion topology.
//
// Term zero disarms fencing entirely: the op goes out as its plain
// form, byte-for-byte identical to a build without fencing. A fresh
// cluster starts at term zero and stays there until the first
// promotion, so the 1-shard lockstep path never pays (or emits) a
// single envelope byte.
//
// Legacy servers that do not speak the 'T' envelope answer '!' unknown
// op; the client falls back to the plain op, since fencing cannot be
// enforced against a build that predates it.

import (
	"encoding/binary"
	"strconv"

	"stellaris/internal/obs/lineage"
)

// ErrFenced reports a write refused because the server has learned a
// newer shard term than the one the write carried: the writer's
// topology view is deposed and must be refreshed before retrying.
type ErrFenced struct {
	// Term is the server's current term, from the 'F' reply payload.
	Term int64
}

func (e *ErrFenced) Error() string {
	return "cache: write fenced by newer shard term " + strconv.FormatInt(e.Term, 10) + "; refresh topology"
}

// fencedValue wraps an inner write op in the 'T' envelope:
// [u64 term][u8 innerOp][inner value].
func fencedValue(term int64, inner byte, val []byte) []byte {
	out := make([]byte, 0, 9+len(val))
	out = binary.BigEndian.AppendUint64(out, uint64(term))
	out = append(out, inner)
	return append(out, val...)
}

// fencedRespErr is respErr plus the envelope's extra outcome: an 'F'
// status becomes *ErrFenced carrying the server's term.
func fencedRespErr(status byte, payload []byte, err error, key string) error {
	if err == nil && status == 'F' {
		t, _ := strconv.ParseInt(string(payload), 10, 64)
		return &ErrFenced{Term: t}
	}
	return respErr(status, payload, err, key)
}

// PutFenced is Put stamped with the caller's believed shard term.
func (c *Client) PutFenced(term int64, key string, val []byte) error {
	if term == 0 {
		return c.Put(key, val)
	}
	status, payload, err := c.roundTrip('T', key, fencedValue(term, 'P', val))
	if err == nil && status == '!' && legacyUnknownOp(payload) {
		return c.Put(key, val)
	}
	if err := fencedRespErr(status, payload, err, key); err != nil {
		return err
	}
	c.lineageHop(lineage.HopPut, key)
	return nil
}

// DeleteFenced is Delete stamped with the caller's believed shard term.
func (c *Client) DeleteFenced(term int64, key string) error {
	if term == 0 {
		return c.Delete(key)
	}
	status, payload, err := c.roundTrip('T', key, fencedValue(term, 'D', nil))
	if err == nil && status == '!' && legacyUnknownOp(payload) {
		return c.Delete(key)
	}
	return fencedRespErr(status, payload, err, key)
}

// IncrFenced is Incr stamped with the caller's believed shard term. It
// shares Incr's at-least-once caveat under retries.
func (c *Client) IncrFenced(term int64, key string) (int64, error) {
	if term == 0 {
		return c.Incr(key)
	}
	status, payload, err := c.roundTrip('T', key, fencedValue(term, 'I', nil))
	if err == nil && status == '!' && legacyUnknownOp(payload) {
		return c.Incr(key)
	}
	if err := fencedRespErr(status, payload, err, key); err != nil {
		return 0, err
	}
	return strconv.ParseInt(string(payload), 10, 64)
}

// PutNFenced is PutN stamped with the caller's believed shard term: the
// whole batch is either applied or fenced atomically (the envelope
// wraps one 'p' blob, and the term check happens before the blob is
// touched).
func (c *Client) PutNFenced(term int64, kvs []KV) error {
	if term == 0 || len(kvs) == 0 {
		return c.PutN(kvs)
	}
	if !c.modern() {
		// A legacy server enforces no terms; the negotiated fallback is
		// the plain batch path (which itself degrades to per-key puts).
		return c.PutN(kvs)
	}
	env := grabFrame(9 + putNBlobSize(kvs))
	env = binary.BigEndian.AppendUint64(env, uint64(term))
	env = append(env, 'p')
	env = appendPutNBlob(env, kvs)
	status, payload, err := c.roundTrip('T', "", env)
	Recycle(env)
	if err == nil && status == '!' && legacyUnknownOp(payload) {
		c.peer.Store(peerLegacy)
		return c.PutN(kvs)
	}
	if err := fencedRespErr(status, payload, err, "(putn)"); err != nil {
		return err
	}
	for _, kv := range kvs {
		c.lineageHop(lineage.HopPut, kv.Key)
	}
	return nil
}
