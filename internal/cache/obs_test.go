package cache

import (
	"testing"

	"stellaris/internal/obs"
)

// TestMemCacheDeleteRemovesCounter is the regression test for the
// counter leak: Delete used to remove only the data entry, so a reused
// key inherited the old Incr count.
func TestMemCacheDeleteRemovesCounter(t *testing.T) {
	c := NewMemCache()
	if _, err := c.Incr("job/1"); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Incr("job/1"); v != 2 {
		t.Fatalf("counter = %d, want 2", v)
	}
	if err := c.Put("job/1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("job/1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("job/1"); err == nil {
		t.Fatal("value survived Delete")
	}
	if v, _ := c.Incr("job/1"); v != 1 {
		t.Fatalf("counter survived Delete: restarted at %d, want 1", v)
	}
}

// TestMemCacheCounterScoping pins the documented Keys/Len contract:
// counter keys are invisible to both.
func TestMemCacheCounterScoping(t *testing.T) {
	c := NewMemCache()
	if _, err := c.Incr("counted"); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("stored", []byte("v")); err != nil {
		t.Fatal(err)
	}
	keys, err := c.Keys("")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "stored" {
		t.Fatalf("Keys sees counter namespace: %v", keys)
	}
	if n, _ := c.Len(); n != 1 {
		t.Fatalf("Len counts counter keys: %d", n)
	}
}

// TestServerDeleteRemovesCounterOverTCP proves the wire path inherits
// the fixed Delete semantics.
func TestServerDeleteRemovesCounterOverTCP(t *testing.T) {
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, err := cli.Incr("k"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if v, err := cli.Incr("k"); err != nil || v != 1 {
		t.Fatalf("Incr after Delete = %d (%v), want 1", v, err)
	}
}

// TestServerAndClientInstrumentation drives ops through an instrumented
// server/client pair and checks the registry saw them.
func TestServerAndClientInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewServer(nil)
	srv.Instrument(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialWith(addr, DialOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if err := cli.Put("a", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Get("missing"); err == nil {
		t.Fatal("expected ErrNotFound")
	}

	snap := reg.Snapshot()
	if p, ok := snap.Find("cache_server_ops_total", map[string]string{"op": "put"}); !ok || p.Value != 1 {
		t.Fatalf("server put count: %+v ok=%v", p, ok)
	}
	if p, ok := snap.Find("cache_server_ops_total", map[string]string{"op": "get"}); !ok || p.Value != 2 {
		t.Fatalf("server get count: %+v ok=%v", p, ok)
	}
	h, ok := snap.FindHistogram("cache_server_op_seconds", map[string]string{"op": "get"})
	if !ok || h.Count != 2 {
		t.Fatalf("server op latency histogram: %+v ok=%v", h, ok)
	}
	ch, ok := snap.FindHistogram("cache_client_op_seconds", map[string]string{"op": "put"})
	if !ok || ch.Count != 1 || ch.Sum <= 0 {
		t.Fatalf("client op latency histogram: %+v ok=%v", ch, ok)
	}
	in, ok := snap.Find("cache_server_frame_bytes_total", map[string]string{"dir": "in"})
	if !ok || in.Value <= 0 {
		t.Fatalf("frame bytes in: %+v ok=%v", in, ok)
	}
	out, ok := snap.Find("cache_server_frame_bytes_total", map[string]string{"dir": "out"})
	if !ok || out.Value <= 0 {
		t.Fatalf("frame bytes out: %+v ok=%v", out, ok)
	}
	if p, ok := snap.Find("cache_server_connections_total", nil); !ok || p.Value != 1 {
		t.Fatalf("connections: %+v ok=%v", p, ok)
	}
}

// TestClientEventsReachRegistry kills the server mid-session and checks
// retry/reconnect events land both in Stats and the shared registry.
func TestClientEventsReachRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialWith(addr, DialOptions{Obs: reg, Attempts: 3, OpTimeout: 200_000_000})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()
	if err := cli.Put("k", []byte("v2")); err == nil {
		t.Fatal("put succeeded against a dead server")
	}
	st := cli.Stats()
	if st.Retries == 0 {
		t.Fatalf("no retries recorded: %+v", st)
	}
	snap := reg.Snapshot()
	p, ok := snap.Find("cache_client_events_total", map[string]string{"event": "retry"})
	if !ok || int64(p.Value) != st.Retries {
		t.Fatalf("registry retry mirror = %+v (ok=%v), stats %+v", p, ok, st)
	}
}
