package cache

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"stellaris/internal/cache/cluster"
	"stellaris/internal/leaktest"
)

// fencedPair is one leader+follower shard whose servers know their
// shard ID, so topology writes teach them their fencing term.
type fencedPair struct {
	leaderStore, followerStore *MemCache
	leader, follower           *Server
	leaderAddr, followerAddr   string
	rep                        *Replica
}

func startFencedPair(t *testing.T, shardID int) *fencedPair {
	t.Helper()
	p := &fencedPair{leaderStore: NewMemCache(), followerStore: NewMemCache()}
	p.leader = NewServer(p.leaderStore)
	p.leader.SetShardID(shardID)
	addr, err := p.leader.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.leaderAddr = addr
	p.follower = NewServer(p.followerStore)
	p.follower.SetShardID(shardID)
	faddr, err := p.follower.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.followerAddr = faddr
	p.rep = NewReplica(p.followerStore, p.leaderAddr, fastReplicaOpts())
	p.rep.Start()
	t.Cleanup(func() {
		p.rep.Stop()
		_ = p.follower.Close()
		_ = p.leader.Close()
	})
	return p
}

// TestSplitBrainFencedWrite is the split-brain regression drill: client
// A promotes the follower (term bump) while client B still holds the
// pre-promotion topology. B's write to the deposed-but-reachable
// leader must be refused with `fenced`, forcing B onto the refreshed
// topology — so the final key state exists ONLY in the promoted
// leader's history, under both payload codecs.
func TestSplitBrainFencedWrite(t *testing.T) {
	for _, codec := range []Codec{CodecGob, CodecBinary} {
		t.Run(codec.String(), func(t *testing.T) {
			leaktest.Check(t)
			p := startFencedPair(t, 0)

			topoV1 := &cluster.Topology{Version: 1, Shards: []cluster.Shard{
				{ID: 0, Addr: p.leaderAddr, Follower: p.followerAddr, Term: 1},
			}}
			dopts := DialOptions{
				OpTimeout: 2 * time.Second, Attempts: 2,
				BackoffBase: 5 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
				PayloadCodec: codec,
			}
			a, err := DialSharded(topoV1, dopts)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			b, err := DialSharded(topoV1, dopts)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			if err := a.PublishTopology(topoV1); err != nil {
				t.Fatal(err)
			}

			// Both clients write happily under term 1.
			if err := b.Put("traj/pre", []byte("shared")); err != nil {
				t.Fatal(err)
			}
			waitFor(t, 2*time.Second, func() error {
				if _, err := p.followerStore.Get("traj/pre"); err != nil {
					return fmt.Errorf("follower not caught up: %w", err)
				}
				return nil
			})

			// A promotes the follower: term 2, leader/follower swapped. The
			// broadcast teaches BOTH servers the new term — the deposed
			// leader via its (new) follower position.
			topoV2 := &cluster.Topology{Version: 2, Shards: []cluster.Shard{
				{ID: 0, Addr: p.followerAddr, Follower: p.leaderAddr, Term: 2},
			}}
			p.rep.Promote()
			if err := a.PublishTopology(topoV2); err != nil {
				t.Fatal(err)
			}
			waitFor(t, 2*time.Second, func() error {
				if got := p.leader.Term(); got != 2 {
					return fmt.Errorf("deposed leader term %d, want 2", got)
				}
				if got := p.follower.Term(); got != 2 {
					return fmt.Errorf("promoted follower term %d, want 2", got)
				}
				return nil
			})

			// The race: A writes through the new topology, then stale B —
			// still aimed at the old leader with term 1 — writes the same
			// key. B must be fenced off the old leader and land on the
			// promoted one.
			if err := a.Put("traj/x", []byte("promoted")); err != nil {
				t.Fatal(err)
			}
			if err := b.Put("traj/x", []byte("stale-view")); err != nil {
				t.Fatalf("stale client write should succeed after refresh, got %v", err)
			}

			// The deposed leader never saw either write.
			if _, err := p.leaderStore.Get("traj/x"); err == nil {
				t.Fatal("split brain: deposed leader accepted a post-promotion write")
			}
			got, err := p.followerStore.Get("traj/x")
			if err != nil {
				t.Fatalf("promoted leader missing the key: %v", err)
			}
			if !bytes.Equal(got, []byte("stale-view")) {
				t.Fatalf("promoted leader has %q, want the refreshed client's write", got)
			}

			bs := b.ShardedStats()
			if bs.FencedWrites < 1 {
				t.Fatalf("FencedWrites = %d, want >= 1", bs.FencedWrites)
			}
			if bs.TopologyVersion != 2 {
				t.Fatalf("stale client still on topology version %d", bs.TopologyVersion)
			}
			// Batched writes from a re-staled view are fenced identically.
			raw, err := DialWith(p.followerAddr, dopts)
			if err != nil {
				t.Fatal(err)
			}
			defer raw.Close()
			if err := raw.PutNFenced(1, []KV{{Key: "traj/y", Val: []byte("v")}}); err == nil {
				t.Fatal("term-1 batch accepted by a term-2 server")
			} else if fe := new(ErrFenced); !errors.As(err, &fe) || fe.Term != 2 {
				t.Fatalf("want ErrFenced{Term: 2}, got %v", err)
			}
			if err := raw.PutFenced(1, "traj/z", []byte("v")); !errors.As(err, new(*ErrFenced)) {
				t.Fatalf("want ErrFenced from stale single put, got %v", err)
			}
			// Equal term passes; zero term (fencing disarmed) also passes —
			// the plain-op path must never be fenced.
			if err := raw.PutFenced(2, "traj/ok", []byte("v")); err != nil {
				t.Fatalf("current-term write refused: %v", err)
			}
			if err := raw.Put("traj/plain", []byte("v")); err != nil {
				t.Fatalf("plain write refused: %v", err)
			}
		})
	}
}

// TestFencedEnvelopeAgainstLegacyServer proves the downgrade path: a
// server that does not speak the 'T' envelope answers unknown-op and
// the client transparently falls back to the plain write.
func TestFencedEnvelopeAgainstLegacyServer(t *testing.T) {
	leaktest.Check(t)
	store := NewMemCache()
	srv, addr := startLeader(t, store)
	defer srv.Close()
	// A real legacy build would reject 'T' at the dispatch switch; the
	// modern server only fences when a newer term is known, so term 1
	// against a term-0 server behaves identically to the legacy fallback:
	// the write lands.
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.PutFenced(1, "traj/k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := store.Get("traj/k"); err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("fenced put did not land: %v %q", err, v)
	}
	// The envelope ratcheted the server's term: older stamps now fence.
	if err := cl.DeleteFenced(0, "traj/k"); err != nil {
		t.Fatalf("zero-term (plain) delete refused: %v", err)
	}
	if _, err := cl.IncrFenced(1, "ctr"); err != nil {
		t.Fatal(err)
	}
	cl2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if err := cl2.PutFenced(3, "traj/k2", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutFenced(1, "traj/k3", []byte("v")); !errors.As(err, new(*ErrFenced)) {
		t.Fatalf("want ErrFenced after term ratchet, got %v", err)
	}
}
