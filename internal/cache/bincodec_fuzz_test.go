package cache

import (
	"math"
	"testing"

	"stellaris/internal/obs/lineage"
	"stellaris/internal/replay"
)

// FuzzBinCodecRoundTrip targets the binary payload codec (bincodec.go,
// delta.go) specifically, complementing FuzzCodecRoundTrip which runs
// whatever codec is the default:
//
//  1. Adversarial decode — raw fuzz bytes, and the same bytes grafted
//     behind each valid binary header (so inputs reach past the magic
//     and kind gates), are fed to every Decode* entry point plus
//     DecodeDelta. All must reject garbage with an error, never panic
//     and never allocate past the slab guards.
//  2. Structured round trip — a DeltaMsg and a Trajectory derived from
//     the input must survive encode → decode bit-for-bit, in both the
//     sparse and dense delta representations and both trajectory
//     layouts (homogeneous column slabs and heterogeneous records).
//
// Guarded by testing.Short so `make race` stays fast; `make
// fuzz-short` explores new inputs.
func FuzzBinCodecRoundTrip(f *testing.F) {
	if testing.Short() {
		f.Skip("binary codec fuzz corpus replay skipped in -short")
	}

	// Seeds: every payload kind in its binary encoding, plus truncated
	// and bit-flipped variants.
	f.Add([]byte{})
	f.Add([]byte("SLB1"))             // magic only, truncated header
	f.Add([]byte("SLB1\x05\x01\x00")) // unknown kind, short
	if b, err := EncodeWeightsWith(CodecBinary, &WeightsMsg{
		Version: 9, Weights: []float64{1, -2.5, math.Pi},
		Trace: lineage.Meta{ID: "w/9", Kind: lineage.KindWeights, Origin: "param"},
	}); err == nil {
		f.Add(b)
		corrupt := append([]byte(nil), b...)
		corrupt[len(corrupt)/2] ^= 0x20
		f.Add(corrupt)
	}
	if b, err := EncodeGradWith(CodecBinary, &GradMsg{
		LearnerID: 2, BornVersion: 4, Grad: []float64{0.5}, Samples: 8,
		MeanRatio: 1.0, MinRatio: 0.9, KL: 0.01, Entropy: 1.1,
	}); err == nil {
		f.Add(b)
	}
	if b, err := EncodeTrajectoryWith(CodecBinary, &replay.Trajectory{
		ActorID: 1, PolicyVersion: 3,
		Steps: []replay.Step{
			{Obs: []float64{1, 2}, Action: []float64{0}, Reward: 1, Done: true, LogProb: -0.5, DistParams: []float64{0.3}},
			{Obs: []float64{3, 4}, Action: []float64{1}, Reward: 0, LogProb: -0.1, DistParams: []float64{0.7}},
		},
		EpisodeReturns: []float64{4},
	}); err == nil {
		f.Add(b)
	}
	if d, err := BuildDelta(5, 4, []float64{1, 2, 3, 4}, []float64{1, 9, 3, 4}); err == nil {
		if b, err := EncodeDelta(d); err == nil {
			f.Add(b)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. No decoder may panic, on the raw input or on the input
		// spliced behind each structurally valid header.
		adversarial := [][]byte{data}
		for kind := byte(1); kind <= 4; kind++ {
			hdr := appendBinHeader(nil, kind, 0)
			adversarial = append(adversarial, append(hdr, data...))
		}
		for _, in := range adversarial {
			if w, err := DecodeWeights(in); err == nil && w == nil {
				t.Fatal("DecodeWeights: nil message without error")
			}
			if g, err := DecodeGrad(in); err == nil && g == nil {
				t.Fatal("DecodeGrad: nil message without error")
			}
			if tr, err := DecodeTrajectory(in); err == nil && tr == nil {
				t.Fatal("DecodeTrajectory: nil trajectory without error")
			}
			if d, err := DecodeDelta(in); err == nil && d == nil {
				t.Fatal("DecodeDelta: nil delta without error")
			}
		}

		// 2. Deltas derived from the input round-trip bit-for-bit and
		// reconstruct the exact next vector.
		base := floatsFromBytes(data, 128)
		next := append([]float64(nil), base...)
		for i := range next {
			if i%3 == 0 {
				next[i] += 1
			}
		}
		d, err := BuildDelta(2, 1, base, next)
		if err != nil {
			t.Fatalf("BuildDelta: %v", err)
		}
		db, err := EncodeDelta(d)
		if err != nil {
			t.Fatalf("EncodeDelta: %v", err)
		}
		d2, err := DecodeDelta(db)
		if err != nil {
			t.Fatalf("DecodeDelta(EncodeDelta): %v", err)
		}
		if d2.Version != d.Version || d2.BaseVersion != d.BaseVersion || d2.Len != d.Len || d2.Dense() != d.Dense() {
			t.Fatalf("delta round trip mismatch: %+v != %+v", d2, d)
		}
		got := append([]float64(nil), base...)
		if err := d2.Apply(got); err != nil {
			t.Fatalf("Apply: %v", err)
		}
		if !float64sEqual(got, next) {
			t.Fatalf("delta reconstruction mismatch: %v != %v", got, next)
		}

		// 3. Trajectories round-trip through the binary codec in both
		// layouts: homogeneous dims (column slabs) when the input length
		// is even, ragged dims (per-step records) otherwise.
		traj := trajFromBytes(data)
		tb, err := EncodeTrajectoryWith(CodecBinary, traj)
		if err != nil {
			t.Fatalf("EncodeTrajectoryWith: %v", err)
		}
		tr2, err := DecodeTrajectory(tb)
		if err != nil {
			t.Fatalf("DecodeTrajectory(EncodeTrajectoryWith): %v", err)
		}
		if tr2.ActorID != traj.ActorID || tr2.PolicyVersion != traj.PolicyVersion ||
			len(tr2.Steps) != len(traj.Steps) || !float64sEqual(tr2.EpisodeReturns, traj.EpisodeReturns) {
			t.Fatalf("trajectory round trip mismatch: %+v != %+v", tr2, traj)
		}
		for i := range traj.Steps {
			a, b := &traj.Steps[i], &tr2.Steps[i]
			if !float64sEqual(a.Obs, b.Obs) || !float64sEqual(a.Action, b.Action) ||
				!sameFloat(a.Reward, b.Reward) || a.Done != b.Done ||
				!sameFloat(a.LogProb, b.LogProb) || !float64sEqual(a.DistParams, b.DistParams) {
				t.Fatalf("step %d mismatch: %+v != %+v", i, b, a)
			}
		}
	})
}

// trajFromBytes deterministically builds a small Trajectory from fuzz
// input. Even input lengths produce homogeneous per-step dims (the
// column-slab wire layout); odd lengths produce ragged dims (the
// per-step record layout).
func trajFromBytes(data []byte) *replay.Trajectory {
	traj := &replay.Trajectory{ActorID: len(data) % 7, PolicyVersion: len(data) % 11}
	vals := floatsFromBytes(data, 64)
	homogeneous := len(data)%2 == 0
	steps := len(vals)/4 + 1
	if steps > 8 {
		steps = 8
	}
	at := func(i int) float64 {
		if len(vals) == 0 {
			return 0.5
		}
		return vals[i%len(vals)]
	}
	for s := 0; s < steps; s++ {
		obsDim, dpDim := 3, 2
		if !homogeneous {
			obsDim, dpDim = 1+s%3, 1+s%2
		}
		st := replay.Step{
			Reward:  at(4 * s),
			Done:    s == steps-1,
			LogProb: at(4*s + 1),
		}
		for i := 0; i < obsDim; i++ {
			st.Obs = append(st.Obs, at(4*s+2+i))
		}
		st.Action = []float64{at(4*s + 3)}
		for i := 0; i < dpDim; i++ {
			st.DistParams = append(st.DistParams, at(4*s+5+i))
		}
		traj.Steps = append(traj.Steps, st)
	}
	traj.EpisodeReturns = []float64{at(0) + at(1)}
	return traj
}
