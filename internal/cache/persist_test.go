package cache

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"stellaris/internal/obs"
)

func TestPersistRecoverKeyspace(t *testing.T) {
	dir := t.TempDir()
	c, err := NewPersistentMemCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Persistent() {
		t.Fatal("store not persistent")
	}
	if err := c.Put("weights/latest", []byte("w1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("traj/0/1", []byte("trajectory")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("doomed", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Incr("version"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewPersistentMemCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, err := r.Get("weights/latest"); err != nil || string(v) != "w1" {
		t.Fatalf("weights/latest = %q, %v", v, err)
	}
	if v, err := r.Get("traj/0/1"); err != nil || string(v) != "trajectory" {
		t.Fatalf("traj = %q, %v", v, err)
	}
	if _, err := r.Get("doomed"); err == nil {
		t.Fatal("deleted key resurrected")
	}
	// Counter must continue from the recovered value.
	if v, err := r.Incr("version"); err != nil || v != 4 {
		t.Fatalf("Incr after recovery = %d, %v (want 4)", v, err)
	}
	if n, _ := r.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
}

func TestPersistTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	c, err := NewPersistentMemCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a record whose declared length exceeds
	// the bytes actually written.
	f, err := os.OpenFile(filepath.Join(dir, aofName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var torn []byte
	torn = binary.BigEndian.AppendUint32(torn, 500)
	torn = append(torn, aofPut, 0, 0)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := NewPersistentMemCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, err := r.Get("a"); err != nil || string(v) != "1" {
		t.Fatalf("a = %q, %v", v, err)
	}
	if v, err := r.Get("b"); err != nil || string(v) != "2" {
		t.Fatalf("b = %q, %v", v, err)
	}
}

func TestPersistCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	c, err := NewPersistentMemCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, snapName)
	b, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(snap, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPersistentMemCache(dir); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestChaosPersistCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("compaction churn in -short mode")
	}
	dir := t.TempDir()
	c, err := NewPersistentMemCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.InstrumentPersistence(reg)
	for i := 0; i < compactOps+10; i++ {
		if _, err := c.Incr("spin"); err != nil {
			t.Fatal(err)
		}
	}
	st, err := os.Stat(filepath.Join(dir, aofName))
	if err != nil {
		t.Fatal(err)
	}
	// Compaction fired mid-loop, so the AOF holds only the post-snapshot
	// tail, far below one record per op.
	if st.Size() > int64(compactOps) {
		t.Fatalf("aof still %d bytes after compaction", st.Size())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewPersistentMemCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, err := r.Incr("spin"); err != nil || v != int64(compactOps)+11 {
		t.Fatalf("counter after compaction+recovery = %d, %v", v, err)
	}
}

// A full server restart over a persistent store must be invisible to a
// retrying client: in-flight ops ride through the bounce and the
// keyspace comes back intact.
func TestPersistentServerRestartClientRidesThrough(t *testing.T) {
	dir := t.TempDir()
	store, err := NewPersistentMemCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	cli, err := DialWith(addr, DialOptions{
		DialTimeout: 200 * time.Millisecond,
		OpTimeout:   200 * time.Millisecond,
		Attempts:    40,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for i := 0; i < 10; i++ {
		if err := cli.Put(fmt.Sprintf("k/%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	// Kill the server and store, then issue an op while it is down.
	srv.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	opDone := make(chan error, 1)
	go func() {
		opDone <- cli.Put("k/during", []byte("survived"))
	}()

	time.Sleep(100 * time.Millisecond)

	// Restart on the same address with a recovered store.
	store2, err := NewPersistentMemCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	srv2 := NewServer(store2)
	var lerr error
	for i := 0; i < 100; i++ {
		if _, lerr = srv2.Listen(addr); lerr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if lerr != nil {
		t.Fatalf("rebind: %v", lerr)
	}
	defer srv2.Close()

	if err := <-opDone; err != nil {
		t.Fatalf("op across restart: %v", err)
	}
	for i := 0; i < 10; i++ {
		v, err := cli.Get(fmt.Sprintf("k/%d", i))
		if err != nil || len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("k/%d after restart = %v, %v", i, v, err)
		}
	}
	if v, err := cli.Get("k/during"); err != nil || string(v) != "survived" {
		t.Fatalf("k/during = %q, %v", v, err)
	}
	if cli.Stats().Reconnects == 0 {
		t.Fatal("client never reconnected — restart was not exercised")
	}
}
