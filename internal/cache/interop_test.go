package cache

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"net"
	"sync"
	"testing"

	"stellaris/internal/replay"
)

// gobDecodeInto plays the old build's decoder: a plain gob decode into
// a frozen legacy shape, with no magic sniffing in front of it.
func gobDecodeInto(b []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// These tests pin the two rolling-upgrade directions of the codec
// migration (DESIGN.md "Wire format": negotiation) plus the durable
// log's mid-run upgrade path. "Old" peers are simulated with the
// pieces a pre-binary build actually had: forced-gob payload encoding
// on the client side, and a server that answers '!' to every op byte
// it does not know (batch 'p'/'g' and hello 'V' included).

// TestInteropLegacyClientNewServer: a gob-pinned client (standing in
// for an old build) writes all three payload families through a
// current server; a modern client must read every one back via codec
// sniffing, and payloads the modern client writes as gob-compatible
// fallback must decode with the frozen legacy decoders.
func TestInteropLegacyClientNewServer(t *testing.T) {
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	oldCli, err := DialWith(addr, DialOptions{PayloadCodec: CodecGob})
	if err != nil {
		t.Fatal(err)
	}
	defer oldCli.Close()
	newCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer newCli.Close()

	if got := oldCli.PayloadCodec(); got != CodecGob {
		t.Fatalf("gob-pinned client reports codec %v", got)
	}

	// Old writer -> new reader, all three payload kinds.
	w := &WeightsMsg{Version: 3, Weights: []float64{1, 2.5, -3}}
	wb, err := EncodeWeightsWith(oldCli.PayloadCodec(), w)
	if err != nil {
		t.Fatal(err)
	}
	if IsBinaryPayload(wb) {
		t.Fatal("gob-pinned client produced a binary payload")
	}
	if err := oldCli.Put("weights/latest", wb); err != nil {
		t.Fatal(err)
	}
	g := &GradMsg{LearnerID: 1, BornVersion: 3, Grad: []float64{0.5}, Samples: 16, MeanRatio: 1, MinRatio: 1, KL: 0, Entropy: 1}
	gb, err := EncodeGradWith(oldCli.PayloadCodec(), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := oldCli.Put("grad/1/0", gb); err != nil {
		t.Fatal(err)
	}
	traj := &replay.Trajectory{ActorID: 1, PolicyVersion: 3, Steps: []replay.Step{{Obs: []float64{1}, Action: []float64{0}, Reward: 1, Done: true, LogProb: -0.5, DistParams: []float64{1}}}}
	tb, err := EncodeTrajectoryWith(oldCli.PayloadCodec(), traj)
	if err != nil {
		t.Fatal(err)
	}
	if err := oldCli.Put("traj/1/0", tb); err != nil {
		t.Fatal(err)
	}

	raw, err := newCli.Get("weights/latest")
	if err != nil {
		t.Fatal(err)
	}
	w2, err := DecodeWeights(raw)
	if err != nil || w2.Version != 3 || len(w2.Weights) != 3 {
		t.Fatalf("new reader on old weights: %+v, %v", w2, err)
	}
	raw, err = newCli.Get("grad/1/0")
	if err != nil {
		t.Fatal(err)
	}
	if g2, err := DecodeGrad(raw); err != nil || g2.BornVersion != 3 {
		t.Fatalf("new reader on old grad: %+v, %v", g2, err)
	}
	raw, err = newCli.Get("traj/1/0")
	if err != nil {
		t.Fatal(err)
	}
	if t2, err := DecodeTrajectory(raw); err != nil || len(t2.Steps) != 1 {
		t.Fatalf("new reader on old trajectory: %+v, %v", t2, err)
	}

	// New writer in fallback mode -> frozen legacy decoder (the other
	// rolling-upgrade direction: the old build reads what a downgraded
	// new build wrote).
	nb, err := EncodeWeightsWith(CodecGob, &WeightsMsg{Version: 4, Weights: []float64{9}})
	if err != nil {
		t.Fatal(err)
	}
	if err := newCli.Put("weights/next", nb); err != nil {
		t.Fatal(err)
	}
	raw, err = oldCli.Get("weights/next")
	if err != nil {
		t.Fatal(err)
	}
	var legacy legacyWeightsMsg
	if err := gobDecodeInto(raw, &legacy); err != nil {
		t.Fatalf("legacy decoder on fallback payload: %v", err)
	}
	if legacy.Version != 4 || len(legacy.Weights) != 1 || legacy.Weights[0] != 9 {
		t.Fatalf("legacy decode mismatch: %+v", legacy)
	}
}

// legacyServer mimics a pre-batch build's cache server: it speaks the
// frame protocol but only knows the original single-key ops and
// answers '!' to anything newer, exactly like Server.handle's default
// arm did before 'p'/'g'/'V' existed.
type legacyServer struct {
	ln net.Listener

	mu sync.Mutex
	kv map[string][]byte
}

func startLegacyServer(t *testing.T) (string, *legacyServer) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &legacyServer{ln: ln, kv: make(map[string][]byte)}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String(), s
}

func (s *legacyServer) serve(conn net.Conn) {
	defer conn.Close()
	for {
		fr, err := readFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				_ = writeResp(conn, '!', []byte(err.Error()))
			}
			return
		}
		s.mu.Lock()
		var status byte = '+'
		var payload []byte
		switch fr.op {
		case 'P':
			s.kv[fr.key] = append([]byte(nil), fr.value...)
		case 'G':
			if v, ok := s.kv[fr.key]; ok {
				payload = v
			} else {
				status = '-'
			}
		case 'D':
			delete(s.kv, fr.key)
		default:
			status = '!'
			payload = []byte("unknown op")
		}
		s.mu.Unlock()
		if err := writeResp(conn, status, payload); err != nil {
			return
		}
	}
}

// TestInteropNewClientLegacyServer: a current client against the
// legacy server must (a) survive the '!' answers to its batch ops by
// falling back to per-key loops, (b) mark the peer legacy so
// PayloadCodec degrades to gob, and (c) still round-trip payloads that
// a frozen legacy decoder can read.
func TestInteropNewClientLegacyServer(t *testing.T) {
	addr, _ := startLegacyServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	kvs := make([]KV, 3)
	for i := range kvs {
		b, err := EncodeWeightsWith(cli.PayloadCodec(), &WeightsMsg{Version: i, Weights: []float64{float64(i)}})
		if err != nil {
			t.Fatal(err)
		}
		kvs[i] = KV{Key: WeightsDeltaKey(i), Val: b}
	}
	if err := cli.PutN(kvs); err != nil {
		t.Fatalf("PutN against legacy server: %v", err)
	}
	if got := cli.PayloadCodec(); got != CodecGob {
		t.Fatalf("client did not degrade to gob after legacy '!': %v", got)
	}
	keys := []string{WeightsDeltaKey(0), WeightsDeltaKey(1), WeightsDeltaKey(2), "missing"}
	vals, err := cli.GetN(keys)
	if err != nil {
		t.Fatalf("GetN against legacy server: %v", err)
	}
	if len(vals) != 4 || vals[3] != nil {
		t.Fatalf("GetN fallback shape wrong: %d vals, missing=%v", len(vals), vals[3])
	}
	for i := 0; i < 3; i++ {
		var legacy legacyWeightsMsg
		if err := gobDecodeInto(vals[i], &legacy); err != nil {
			t.Fatalf("payload %d not readable by a legacy decoder: %v", i, err)
		}
		if legacy.Version != i {
			t.Fatalf("payload %d round trip: got version %d", i, legacy.Version)
		}
	}
}

// TestInteropPersistMixedCodecLog simulates a mid-run upgrade under a
// durable cache: a gob-era process writes payloads and exits, the
// upgraded binary-codec process appends more, and after one further
// restart every payload — whichever era wrote it — must decode.
func TestInteropPersistMixedCodecLog(t *testing.T) {
	dir := t.TempDir()

	c, err := NewPersistentMemCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	put := func(key string, codec Codec, version int) {
		t.Helper()
		b, err := EncodeWeightsWith(codec, &WeightsMsg{Version: version, Weights: []float64{float64(version), -1}})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put(key, b); err != nil {
			t.Fatal(err)
		}
	}
	put("weights/v1", CodecGob, 1)
	tb, err := EncodeTrajectoryWith(CodecGob, &replay.Trajectory{ActorID: 2, PolicyVersion: 1, Steps: []replay.Step{{Obs: []float64{1}, Action: []float64{1}, Reward: 1, Done: true, LogProb: -1, DistParams: []float64{1}}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("traj/old", tb); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Upgrade: reopen the same log and append binary-era payloads.
	c, err = NewPersistentMemCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	put("weights/v2", CodecBinary, 2)
	d, err := BuildDelta(3, 2, []float64{2, -1}, []float64{3, -1})
	if err != nil {
		t.Fatal(err)
	}
	db, err := EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(WeightsDeltaKey(3), db); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Final restart: the replayed keyspace holds both eras side by side.
	c, err = NewPersistentMemCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for key, wantVer := range map[string]int{"weights/v1": 1, "weights/v2": 2} {
		raw, err := c.Get(key)
		if err != nil {
			t.Fatalf("%s after mixed-log replay: %v", key, err)
		}
		w, err := DecodeWeights(raw)
		if err != nil || w.Version != wantVer {
			t.Fatalf("%s decode: %+v, %v", key, w, err)
		}
	}
	raw, err := c.Get("traj/old")
	if err != nil {
		t.Fatal(err)
	}
	if tr, err := DecodeTrajectory(raw); err != nil || tr.ActorID != 2 {
		t.Fatalf("gob-era trajectory after replay: %+v, %v", tr, err)
	}
	raw, err = c.Get(WeightsDeltaKey(3))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DecodeDelta(raw)
	if err != nil || d2.Version != 3 || d2.BaseVersion != 2 {
		t.Fatalf("binary-era delta after replay: %+v, %v", d2, err)
	}
	got := []float64{2, -1}
	if err := d2.Apply(got); err != nil || got[0] != 3 {
		t.Fatalf("delta apply after replay: %v, %v", got, err)
	}
}
