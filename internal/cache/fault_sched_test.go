package cache

import (
	"fmt"
	"testing"
	"time"
)

// scheduledRun drives a fixed sequential op workload through a proxy
// with the given outage schedule and returns the proxy stats.
func scheduledRun(t *testing.T, cfg FaultConfig, ops int) FaultStats {
	t.Helper()
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	proxy := NewFaultProxy(addr, cfg)
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	cli, err := DialWith(paddr, DialOptions{
		DialTimeout: 200 * time.Millisecond,
		OpTimeout:   200 * time.Millisecond,
		Attempts:    30,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for i := 0; i < ops; i++ {
		if err := cli.Put(fmt.Sprintf("k/%d", i), []byte{byte(i)}); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// Every op must have landed despite the kills.
	for i := 0; i < ops; i++ {
		if v, err := cli.Get(fmt.Sprintf("k/%d", i)); err != nil || len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("k/%d = %v, %v", i, v, err)
		}
	}
	return proxy.Stats()
}

// A repeating kill schedule must fire deterministically: two identical
// sequential runs observe the same number of outages, and clients ride
// through every one of them.
func TestFaultProxyKillScheduleDeterministic(t *testing.T) {
	cfg := FaultConfig{KillAfterOps: 10, Downtime: 30 * time.Millisecond, Seed: 3}
	a := scheduledRun(t, cfg, 25)
	b := scheduledRun(t, cfg, 25)
	if a.Outages == 0 {
		t.Fatal("kill schedule never fired")
	}
	if a.Outages != b.Outages {
		t.Fatalf("outage counts diverged across identical runs: %d vs %d", a.Outages, b.Outages)
	}
	if a.Ops != b.Ops {
		t.Fatalf("op counts diverged across identical runs: %d vs %d", a.Ops, b.Ops)
	}
}

func TestFaultProxyScriptedOutages(t *testing.T) {
	cfg := FaultConfig{
		Schedule: []Outage{
			{AfterOps: 5, Downtime: 20 * time.Millisecond},
			{AfterOps: 12, Downtime: 20 * time.Millisecond},
		},
		Seed: 3,
	}
	st := scheduledRun(t, cfg, 20)
	if st.Outages != 2 {
		t.Fatalf("scripted outages fired %d times, want 2", st.Outages)
	}
}

func TestFrameParserChunkIndependence(t *testing.T) {
	// One 9-byte request frame (4-byte length prefix + 5-byte body)
	// followed by another, split at every possible boundary, must always
	// count exactly 2 frames.
	frame := []byte{0, 0, 0, 5, 'P', 0, 0, 0, 0}
	stream := append(append([]byte(nil), frame...), frame...)
	for cut := 1; cut < len(stream); cut++ {
		fp := &frameParser{}
		got := fp.feed(stream[:cut]) + fp.feed(stream[cut:])
		if got != 2 {
			t.Fatalf("cut %d: counted %d frames, want 2", cut, got)
		}
	}
}
