package cache

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync/atomic"

	"stellaris/internal/obs/lineage"
	"stellaris/internal/replay"
)

// The cache stores three structured payload families, mirroring the
// paper's Redis usage: trajectory sample batches (actors → learners),
// gradients (learners → parameter function), and policy weight vectors
// (parameter function → everyone). The default codec is the hand-rolled
// binary format in bincodec.go; gob — which plays the role Pickle plays
// in the paper's implementation — remains as a fallback for
// interoperating with old builds. Decoders sniff the payload magic, so
// both formats decode regardless of the configured encoder.

// Codec selects the wire encoding for cache payloads.
type Codec int

const (
	// CodecBinary is the hand-rolled binary format (default).
	CodecBinary Codec = iota
	// CodecGob is the legacy gob encoding, kept for cross-version
	// interop with pre-binary builds.
	CodecGob
)

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case CodecBinary:
		return "binary"
	case CodecGob:
		return "gob"
	default:
		return fmt.Sprintf("Codec(%d)", int(c))
	}
}

// ParseCodec maps a -codec flag value to a Codec. The empty string
// selects the default (binary).
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "binary":
		return CodecBinary, nil
	case "gob":
		return CodecGob, nil
	default:
		return 0, fmt.Errorf("cache: unknown codec %q (want binary or gob)", s)
	}
}

// defaultCodec is the process-wide encoder used by the plain Encode*
// functions; cmd binaries set it from their -codec flag.
var defaultCodec atomic.Int32

// SetDefaultCodec changes the process-wide default encoder.
func SetDefaultCodec(c Codec) { defaultCodec.Store(int32(c)) }

// DefaultCodec returns the process-wide default encoder.
func DefaultCodec() Codec { return Codec(defaultCodec.Load()) }

// WeightsMsg is a versioned policy weight vector.
type WeightsMsg struct {
	Version int
	Weights []float64
	// Trace is the causal-tracing context (see internal/obs/lineage).
	// gob tolerates the field's absence in either direction, so payloads
	// encoded by pre-tracing builds still decode and old decoders skip
	// it — the wire protocol itself is unchanged.
	Trace lineage.Meta
}

// GradMsg is one learner function's output.
type GradMsg struct {
	LearnerID int
	// BornVersion is the policy version the learner pulled before
	// computing; staleness at aggregation is current - BornVersion.
	BornVersion int
	Grad        []float64
	Samples     int
	// MeanRatio and MinRatio summarize the learner's importance ratios
	// for the truncation tracker (Eq. 2's group view).
	MeanRatio float64
	MinRatio  float64
	KL        float64
	Entropy   float64
	// Truncated counts samples whose importance ratio hit the Eq. 2
	// truncation cap during this gradient's computation — carried so the
	// parameter side can attribute truncated-by-IS lineage hops.
	Truncated int
	// Trace is the causal-tracing context (backward compatible; see
	// WeightsMsg.Trace).
	Trace lineage.Meta
}

// EncodeTrajectory encodes a trajectory with the default codec.
// Binary-encoded buffers may be returned to the frame pool with
// Recycle once handed off.
func EncodeTrajectory(t *replay.Trajectory) ([]byte, error) {
	return EncodeTrajectoryWith(DefaultCodec(), t)
}

// EncodeTrajectoryWith encodes a trajectory with an explicit codec.
func EncodeTrajectoryWith(c Codec, t *replay.Trajectory) ([]byte, error) {
	if c == CodecGob {
		return encode(t)
	}
	return appendTrajectoryBin(t), nil
}

// DecodeTrajectory decodes a trajectory payload in either wire format,
// sniffing the binary magic.
func DecodeTrajectory(b []byte) (*replay.Trajectory, error) {
	if IsBinaryPayload(b) {
		return decodeTrajectoryBin(b)
	}
	var t replay.Trajectory
	if err := decode(b, &t); err != nil {
		return nil, err
	}
	return &t, nil
}

// EncodeWeights encodes a weight message with the default codec.
func EncodeWeights(w *WeightsMsg) ([]byte, error) {
	return EncodeWeightsWith(DefaultCodec(), w)
}

// EncodeWeightsWith encodes a weight message with an explicit codec.
func EncodeWeightsWith(c Codec, w *WeightsMsg) ([]byte, error) {
	if c == CodecGob {
		return encode(w)
	}
	return appendWeightsBin(w), nil
}

// DecodeWeights decodes a weight payload in either wire format.
func DecodeWeights(b []byte) (*WeightsMsg, error) {
	if IsBinaryPayload(b) {
		return decodeWeightsBin(b)
	}
	var w WeightsMsg
	if err := decode(b, &w); err != nil {
		return nil, err
	}
	return &w, nil
}

// EncodeGrad encodes a gradient message with the default codec.
func EncodeGrad(g *GradMsg) ([]byte, error) {
	return EncodeGradWith(DefaultCodec(), g)
}

// EncodeGradWith encodes a gradient message with an explicit codec.
func EncodeGradWith(c Codec, g *GradMsg) ([]byte, error) {
	if c == CodecGob {
		return encode(g)
	}
	return appendGradBin(g), nil
}

// DecodeGrad decodes a gradient payload in either wire format.
func DecodeGrad(b []byte) (*GradMsg, error) {
	if IsBinaryPayload(b) {
		return decodeGradBin(b)
	}
	var g GradMsg
	if err := decode(b, &g); err != nil {
		return nil, err
	}
	return &g, nil
}

func encode(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("cache: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func decode(b []byte, v interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("cache: decode: %w", err)
	}
	return nil
}
