package cache

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"stellaris/internal/obs/lineage"
	"stellaris/internal/replay"
)

// The cache stores three structured payload families, mirroring the
// paper's Redis usage: trajectory sample batches (actors → learners),
// gradients (learners → parameter function), and policy weight vectors
// (parameter function → everyone). gob plays the role Pickle plays in
// the paper's implementation.

// WeightsMsg is a versioned policy weight vector.
type WeightsMsg struct {
	Version int
	Weights []float64
	// Trace is the causal-tracing context (see internal/obs/lineage).
	// gob tolerates the field's absence in either direction, so payloads
	// encoded by pre-tracing builds still decode and old decoders skip
	// it — the wire protocol itself is unchanged.
	Trace lineage.Meta
}

// GradMsg is one learner function's output.
type GradMsg struct {
	LearnerID int
	// BornVersion is the policy version the learner pulled before
	// computing; staleness at aggregation is current - BornVersion.
	BornVersion int
	Grad        []float64
	Samples     int
	// MeanRatio and MinRatio summarize the learner's importance ratios
	// for the truncation tracker (Eq. 2's group view).
	MeanRatio float64
	MinRatio  float64
	KL        float64
	Entropy   float64
	// Truncated counts samples whose importance ratio hit the Eq. 2
	// truncation cap during this gradient's computation — carried so the
	// parameter side can attribute truncated-by-IS lineage hops.
	Truncated int
	// Trace is the causal-tracing context (backward compatible; see
	// WeightsMsg.Trace).
	Trace lineage.Meta
}

// EncodeTrajectory gob-encodes a trajectory.
func EncodeTrajectory(t *replay.Trajectory) ([]byte, error) { return encode(t) }

// DecodeTrajectory decodes a trajectory payload.
func DecodeTrajectory(b []byte) (*replay.Trajectory, error) {
	var t replay.Trajectory
	if err := decode(b, &t); err != nil {
		return nil, err
	}
	return &t, nil
}

// EncodeWeights gob-encodes a weight message.
func EncodeWeights(w *WeightsMsg) ([]byte, error) { return encode(w) }

// DecodeWeights decodes a weight payload.
func DecodeWeights(b []byte) (*WeightsMsg, error) {
	var w WeightsMsg
	if err := decode(b, &w); err != nil {
		return nil, err
	}
	return &w, nil
}

// EncodeGrad gob-encodes a gradient message.
func EncodeGrad(g *GradMsg) ([]byte, error) { return encode(g) }

// DecodeGrad decodes a gradient payload.
func DecodeGrad(b []byte) (*GradMsg, error) {
	var g GradMsg
	if err := decode(b, &g); err != nil {
		return nil, err
	}
	return &g, nil
}

func encode(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("cache: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func decode(b []byte, v interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("cache: decode: %w", err)
	}
	return nil
}
