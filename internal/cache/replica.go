package cache

// Follower replication for the cache tier (DESIGN.md §11.2). A Replica
// attaches a local MemCache to a leader stellaris-cached process and
// mirrors its keyspace: on every (re)connect it sends op 'R', receives
// an atomic full-state snapshot (reset record, then every key and
// counter), and then applies the live mutation feed record by record.
// Records reuse the AOF's CRC framing (persist.go), so what a follower
// applies is byte-for-byte what a crash recovery would replay.
//
// The failure model is crash-stop with promotion by redirection: when
// the leader dies, clients (ShardedClient) start writing to the
// follower's own server address; nothing has to be flipped on the
// follower itself, because it was serving its (replicated) store all
// along. Promote only stops the replication loop so a resurrected old
// leader cannot reset the promoted store with a stale full sync.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"stellaris/internal/obs"
	"stellaris/internal/rng"
)

// ErrReplicaClosed reports an operation on a stopped Replica.
var ErrReplicaClosed = errors.New("cache: replica stopped")

// ReplicaOptions tunes the follower's reconnect policy. The zero value
// selects defaults suitable for a LAN deployment.
type ReplicaOptions struct {
	// DialTimeout bounds each connect attempt to the leader. Default 5s.
	DialTimeout time.Duration
	// ReadTimeout is the longest silence tolerated on the stream before
	// the leader is declared dead; the leader keepalives every 250ms, so
	// this is effectively the failure-detection latency. Default 2s.
	ReadTimeout time.Duration
	// BackoffBase/BackoffMax shape the reconnect backoff (exponential
	// with ±50% jitter). Defaults 50ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the jitter RNG.
	Seed uint64
}

func (o ReplicaOptions) withDefaults() ReplicaOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 2 * time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	return o
}

// ReplicaStats counts replication progress. All fields are monotone and
// safe to read concurrently.
type ReplicaStats struct {
	// FullSyncs counts snapshot transfers completed (one per successful
	// connect — the first connect included).
	FullSyncs int64
	// Records counts mutation records applied, snapshot records included.
	Records int64
	// Reconnects counts connects after the first, i.e. recoveries from a
	// broken stream.
	Reconnects int64
}

// Replica streams a leader's keyspace into store. Create with
// NewReplica, start with Start, stop with Promote (or Stop).
type Replica struct {
	store  *MemCache
	leader string
	opts   ReplicaOptions

	mu     sync.Mutex
	conn   net.Conn
	closed bool
	jitter *rng.RNG

	wg        sync.WaitGroup
	stopping  chan struct{}
	fullSyncs obs.Counter
	records   obs.Counter
	reconns   obs.Counter
}

// NewReplica prepares (but does not start) replication of leaderAddr
// into store. The store may simultaneously be served by this process's
// own Server — that is the normal follower deployment, and what makes
// promotion a pure client-side redirect.
func NewReplica(store *MemCache, leaderAddr string, opts ReplicaOptions) *Replica {
	opts = opts.withDefaults()
	return &Replica{
		store:    store,
		leader:   leaderAddr,
		opts:     opts,
		jitter:   rng.New(opts.Seed ^ 0xf0110e7), // "follower"
		stopping: make(chan struct{}),
	}
}

// Start launches the replication loop: connect, full-sync, apply the
// live feed, reconnect with backoff on any failure, forever until
// Promote/Stop.
func (r *Replica) Start() {
	r.wg.Add(1)
	go r.loop()
}

// Stats returns replication progress counters.
func (r *Replica) Stats() ReplicaStats {
	return ReplicaStats{
		FullSyncs:  r.fullSyncs.Value(),
		Records:    r.records.Value(),
		Reconnects: r.reconns.Value(),
	}
}

// Promote stops replicating and returns once the loop has exited,
// leaving the store frozen at the last applied record. Call it when
// clients are being redirected here: a promoted store must never again
// accept a full sync, or a resurrected old leader would reset it —
// discarding every write the promoted follower has accepted since.
// Idempotent.
func (r *Replica) Promote() { r.stop() }

// Stop is Promote without the operational connotation — for plain
// shutdown paths.
func (r *Replica) Stop() { r.stop() }

func (r *Replica) stop() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.stopping)
		if r.conn != nil {
			_ = r.conn.Close()
		}
	}
	r.mu.Unlock()
	r.wg.Wait()
}

func (r *Replica) loop() {
	defer r.wg.Done()
	for attempt := 0; ; attempt++ {
		if r.isClosed() {
			return
		}
		if attempt > 0 {
			r.reconns.Inc()
			if !r.sleep(r.backoff(attempt)) {
				return
			}
		}
		// Errors are expected operating conditions here (leader down,
		// leader bounced, stream cut): the loop IS the error handler, so
		// individual failures are not surfaced beyond the stats.
		_ = r.syncOnce()
	}
}

func (r *Replica) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// sleep waits d or until stop, reporting whether the loop should
// continue.
func (r *Replica) sleep(d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-r.stopping:
		return false
	}
}

func (r *Replica) backoff(attempt int) time.Duration {
	d := r.opts.BackoffBase << uint(attempt-1)
	if d > r.opts.BackoffMax || d <= 0 {
		d = r.opts.BackoffMax
	}
	r.mu.Lock()
	j := r.jitter.Float64()
	r.mu.Unlock()
	return time.Duration((0.5 + j) * float64(d))
}

// syncOnce runs one full connect → snapshot → live-feed cycle and
// returns when the stream breaks (or the replica is stopped).
func (r *Replica) syncOnce() error {
	conn, err := net.DialTimeout("tcp", r.leader, r.opts.DialTimeout)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		_ = conn.Close()
		return ErrReplicaClosed
	}
	r.conn = conn
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		if r.conn == conn {
			r.conn = nil
		}
		r.mu.Unlock()
		_ = conn.Close()
	}()

	if err := writeFrame(conn, 'R', "", nil); err != nil {
		return err
	}
	r.fullSyncs.Inc()
	for {
		if err := conn.SetReadDeadline(time.Now().Add(r.opts.ReadTimeout)); err != nil {
			return err
		}
		status, payload, err := readResp(conn)
		if err != nil {
			return err
		}
		if status != '+' {
			// '!' means the leader predates replication (or refused);
			// retrying cannot help, but the loop's backoff makes the
			// repeated failure cheap and a later leader upgrade heals it.
			return fmt.Errorf("cache: leader %s refused replication: %s", r.leader, payload)
		}
		if len(payload) == 0 {
			continue // keepalive
		}
		op, kb, val, n := scanRecord(payload)
		if n == 0 || n != len(payload) {
			return fmt.Errorf("cache: replication stream from %s: corrupt record (%d bytes)", r.leader, len(payload))
		}
		if err := r.ApplyRecord(op, string(kb), val); err != nil {
			return err
		}
		r.records.Inc()
	}
}

// ApplyRecord applies one replicated mutation record to the follower's
// store through the same mutation surface clients use, so a persistent
// follower journals everything it mirrors and its own crash recovery
// stays coherent.
func (r *Replica) ApplyRecord(op byte, key string, val []byte) error {
	switch op {
	case aofReset:
		return r.store.resetForSync()
	case aofPut:
		return r.store.Put(key, val)
	case aofDelete:
		return r.store.Delete(key)
	case aofIncr:
		_, err := r.store.Incr(key)
		return err
	case aofCounterSet:
		if len(val) != 8 {
			return fmt.Errorf("cache: replication: counter-set record for %q has %d-byte value, want 8", key, len(val))
		}
		return r.store.setCounter(key, int64(binary.BigEndian.Uint64(val)))
	default:
		return fmt.Errorf("cache: replication: unknown record op %q", op)
	}
}
