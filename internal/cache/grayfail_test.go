package cache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"stellaris/internal/cache/cluster"
	"stellaris/internal/leaktest"
)

// brownoutShard is one leader (reachable only through a FaultProxy)
// with a live follower replica — the alive-but-slow topology the
// gray-failure detector exists for.
type brownoutShard struct {
	leaderStore, followerStore *MemCache
	proxy                      *FaultProxy
	proxyAddr, followerAddr    string
}

func startBrownoutShard(t *testing.T) *brownoutShard {
	t.Helper()
	s := &brownoutShard{leaderStore: NewMemCache(), followerStore: NewMemCache()}
	leader := NewServer(s.leaderStore)
	laddr, err := leader.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.proxy = NewFaultProxy(laddr, FaultConfig{Seed: 9})
	s.proxyAddr, err = s.proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	follower := NewServer(s.followerStore)
	s.followerAddr, err = follower.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplica(s.followerStore, laddr, fastReplicaOpts())
	rep.Start()
	t.Cleanup(func() {
		rep.Stop()
		_ = follower.Close()
		_ = s.proxy.Close()
		_ = leader.Close()
	})
	return s
}

func (s *brownoutShard) topology() *cluster.Topology {
	return &cluster.Topology{Version: 1, Shards: []cluster.Shard{
		{ID: 0, Addr: s.proxyAddr, Follower: s.followerAddr},
	}}
}

// TestBreakerOpensAndFastFails drives a followerless shard through the
// full breaker cycle: consecutive transport failures open it, open
// means an immediate local refusal (no connection attempt, no timeout
// burn), and the half-open probe against a resurrected server recloses
// it.
func TestBreakerOpensAndFastFails(t *testing.T) {
	leaktest.Check(t)
	store := NewMemCache()
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	topo := &cluster.Topology{Version: 1, Shards: []cluster.Shard{{ID: 0, Addr: addr}}}
	sc, err := DialSharded(topo, DialOptions{
		OpTimeout: 300 * time.Millisecond, Attempts: 1,
		BreakerThreshold: 2, BreakerCooldown: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if err := sc.Put("traj/up", []byte("v")); err != nil {
		t.Fatal(err)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		err := sc.Put("traj/down", []byte("v"))
		if !errors.As(err, new(*TransportError)) {
			t.Fatalf("failure %d: want TransportError, got %v", i, err)
		}
	}
	start := time.Now()
	err = sc.Put("traj/down", []byte("v"))
	if !errors.As(err, new(*ErrBreakerOpen)) {
		t.Fatalf("want ErrBreakerOpen after %d failures, got %v", 2, err)
	}
	if fast := time.Since(start); fast > 100*time.Millisecond {
		t.Fatalf("open breaker took %v to refuse; must fail locally", fast)
	}

	srv2 := NewServer(store)
	waitFor(t, 5*time.Second, func() error {
		_, err := srv2.Listen(addr)
		return err
	})
	defer srv2.Close()
	// After the cooldown the single half-open probe lands, recloses the
	// breaker, and normal traffic resumes.
	waitFor(t, 5*time.Second, func() error {
		return sc.Put("traj/back", []byte("v"))
	})
	if st := sc.ShardedStats(); st.BreakerOpens < 1 {
		t.Fatalf("BreakerOpens = %d, want >= 1", st.BreakerOpens)
	}
}

// TestHedgedReadServesFromFollower brownouts the leader just enough to
// cross the SUSPECT line (half of DegradeLatency) without crossing the
// evacuation line: reads must start racing the follower and winning,
// while the shard is NOT failed over.
func TestHedgedReadServesFromFollower(t *testing.T) {
	leaktest.Check(t)
	s := startBrownoutShard(t)
	sc, err := DialSharded(s.topology(), DialOptions{
		OpTimeout: 2 * time.Second, Attempts: 1,
		DegradeLatency: 220 * time.Millisecond, DegradeWindow: 4,
		HedgeReads: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if err := sc.Put("traj/h", []byte("hot")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() error {
		_, err := s.followerStore.Get("traj/h")
		return err
	})

	// Floor both directions at 60ms: round trips settle near 120ms —
	// past the 110ms suspect line, well short of the 220ms evacuation
	// line.
	s.proxy.BrownoutNow(60*time.Millisecond, 0)
	waitFor(t, 10*time.Second, func() error {
		v, err := sc.Get("traj/h")
		if err != nil {
			return err
		}
		if !bytes.Equal(v, []byte("hot")) {
			return fmt.Errorf("got %q", v)
		}
		if sc.ShardedStats().HedgedReads < 1 {
			return fmt.Errorf("no hedged reads yet")
		}
		return nil
	})
	st := sc.ShardedStats()
	if st.GrayFailovers != 0 || st.Failovers != 0 {
		t.Fatalf("suspect-level brownout must hedge, not evacuate: %+v", st)
	}
}

// TestGrayFailoverEvacuatesBrownedOutShard brownouts the leader past
// DegradeLatency: the shard is alive and error-free, yet the client
// must evacuate it onto the follower through the same epoch-guarded
// promotion a dead leader gets — and then be fast again.
func TestGrayFailoverEvacuatesBrownedOutShard(t *testing.T) {
	leaktest.Check(t)
	s := startBrownoutShard(t)
	sc, err := DialSharded(s.topology(), DialOptions{
		OpTimeout: 3 * time.Second, Attempts: 1,
		DegradeLatency: 100 * time.Millisecond, DegradeWindow: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if err := sc.Put("traj/g", []byte("v")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() error {
		_, err := s.followerStore.Get("traj/g")
		return err
	})

	s.proxy.BrownoutNow(150*time.Millisecond, 0)
	waitFor(t, 15*time.Second, func() error {
		if _, err := sc.Get("traj/g"); err != nil {
			return err
		}
		if sc.ShardedStats().GrayFailovers < 1 {
			return fmt.Errorf("no gray failover yet")
		}
		return nil
	})
	// Evacuated onto the direct follower: ops are fast again even though
	// the brownout still holds the old leader.
	start := time.Now()
	v, err := sc.Get("traj/g")
	if err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("post-evacuation read: %v %q", err, v)
	}
	if rtt := time.Since(start); rtt >= 150*time.Millisecond {
		t.Fatalf("post-evacuation read took %v; still routed through the brownout?", rtt)
	}
}

// TestRetryBudgetCapsRetryStorm is the satellite regression: many
// workers hammering one dead shard must not multiply into an unbounded
// reconnect storm. A shared token bucket caps the GLOBAL retry rate —
// first attempts always pass (the budget only meters retries), so a
// healthy recovery is never starved.
func TestRetryBudgetCapsRetryStorm(t *testing.T) {
	leaktest.Check(t)
	const (
		workers  = 8
		opsPer   = 20
		unbudget = workers * opsPer * 4 // Attempts 5 => 4 retries each
		generous = 100                  // burst 5 + refill slack
	)
	store := NewMemCache()
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	budget := NewRetryBudget(20, 5)
	clients := make([]*Client, workers)
	for i := range clients {
		clients[i], err = DialWith(addr, DialOptions{
			OpTimeout: 500 * time.Millisecond, Attempts: 5,
			BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond,
			RetryBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer clients[i].Close()
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *Client) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				if err := cl.Put("traj/storm", []byte("v")); err == nil {
					t.Error("put against a dead shard succeeded")
					return
				}
			}
		}(cl)
	}
	wg.Wait()

	var retries int64
	for _, cl := range clients {
		retries += cl.Stats().Retries
	}
	if retries > generous {
		t.Fatalf("retry storm: %d retries across %d workers (unbudgeted would be ~%d)",
			retries, workers, unbudget)
	}
	if budget.Exhausted() == 0 {
		t.Fatal("budget never reported exhaustion during the storm")
	}
}
