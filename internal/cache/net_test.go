package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"stellaris/internal/leaktest"
)

// startServer returns a running server and a connected client; cleanup
// is registered on t.
func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	return srv, cli
}

func TestClientServerRoundTrip(t *testing.T) {
	leaktest.Check(t)
	_, cli := startServer(t)
	if err := cli.Put("key", []byte("value")); err != nil {
		t.Fatal(err)
	}
	v, err := cli.Get("key")
	if err != nil || string(v) != "value" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := cli.Delete("key"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Get("key"); err == nil {
		t.Fatal("deleted key still readable")
	}
	var nf ErrNotFound
	if _, err := cli.Get("nope"); err != nil {
		nf = ErrNotFound{Key: "nope"}
		if err.Error() != nf.Error() {
			t.Fatalf("not-found error %v", err)
		}
	}
}

func TestClientIncrAndLen(t *testing.T) {
	_, cli := startServer(t)
	for want := int64(1); want <= 5; want++ {
		got, err := cli.Incr("counter")
		if err != nil || got != want {
			t.Fatalf("Incr = %d, %v", got, err)
		}
	}
	if err := cli.Put("a", nil); err != nil {
		t.Fatal(err)
	}
	n, err := cli.Len()
	if err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestClientKeys(t *testing.T) {
	_, cli := startServer(t)
	for i := 0; i < 3; i++ {
		if err := cli.Put(fmt.Sprintf("grad/%d", i), []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Put("weights/latest", []byte{2}); err != nil {
		t.Fatal(err)
	}
	keys, err := cli.Keys("grad/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != "grad/0" {
		t.Fatalf("Keys = %v", keys)
	}
	empty, err := cli.Keys("zzz")
	if err != nil || empty != nil {
		t.Fatalf("empty prefix gave %v, %v", empty, err)
	}
}

func TestLargePayload(t *testing.T) {
	_, cli := startServer(t)
	// A policy-weights-sized payload (1 MiB).
	big := bytes.Repeat([]byte{0xAB}, 1<<20)
	if err := cli.Put("weights", big); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Get("weights")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large payload corrupted")
	}
}

func TestConcurrentClients(t *testing.T) {
	leaktest.Check(t)
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("c%d/k%d", c, i)
				if err := cli.Put(key, []byte(key)); err != nil {
					errs <- err
					return
				}
				v, err := cli.Get(key)
				if err != nil || string(v) != key {
					errs <- fmt.Errorf("get %q: %q %v", key, v, err)
					return
				}
				if _, err := cli.Incr("total"); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	n, err := cli.Incr("total")
	if err != nil || n != 401 {
		t.Fatalf("total = %d, %v; want 401", n, err)
	}
}

func TestClientSharedStoreWithServer(t *testing.T) {
	store := NewMemCache()
	if err := store.Put("preloaded", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	v, err := cli.Get("preloaded")
	if err != nil || string(v) != "yes" {
		t.Fatalf("preloaded value %q, %v", v, err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	leaktest.Check(t)
	srv := NewServer(nil)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second Close errored")
	}
}

func TestWeightsThroughNetwork(t *testing.T) {
	// End-to-end: encode → network → decode, the learner's policy-pull
	// path against a real TCP cache.
	_, cli := startServer(t)
	msg := &WeightsMsg{Version: 3, Weights: make([]float64, 10000)}
	for i := range msg.Weights {
		msg.Weights[i] = float64(i) * 0.25
	}
	b, err := EncodeWeights(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Put("weights/latest", b); err != nil {
		t.Fatal(err)
	}
	raw, err := cli.Get("weights/latest")
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWeights(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 3 || got.Weights[9999] != 9999*0.25 {
		t.Fatal("weights corrupted through the network cache")
	}
}
