package cache

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"stellaris/internal/leaktest"
	"stellaris/internal/rng"
)

// flakyListener accepts connections and serves at most reqsPerConn
// requests on each before abruptly closing it — a server whose
// connections die under the client.
func flakyListener(t *testing.T, store *MemCache, reqsPerConn int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := NewServer(store)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				bw := bufio.NewWriter(conn)
				for i := 0; i < reqsPerConn; i++ {
					f, err := readFrame(br)
					if err != nil {
						return
					}
					if err := srv.handle(bw, f); err != nil {
						return
					}
					if err := bw.Flush(); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// blackHoleListener accepts connections and reads requests but never
// responds — the stalled-cache case only deadlines can detect.
func blackHoleListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func fastOpts() DialOptions {
	return DialOptions{
		OpTimeout:   200 * time.Millisecond,
		Attempts:    4,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Seed:        1,
	}
}

func TestClientReconnectsAfterConnClose(t *testing.T) {
	leaktest.Check(t)
	store := NewMemCache()
	addr := flakyListener(t, store, 1) // every connection dies after one request
	cli, err := DialWith(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 5; i++ {
		if err := cli.Put("k", []byte("v")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	v, err := cli.Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	st := cli.Stats()
	if st.Reconnects == 0 {
		t.Fatalf("no reconnects recorded: %+v", st)
	}
	if st.Retries == 0 {
		t.Fatalf("no retries recorded: %+v", st)
	}
}

func TestClientOpTimeout(t *testing.T) {
	addr := blackHoleListener(t)
	opts := fastOpts()
	opts.OpTimeout = 50 * time.Millisecond
	opts.Attempts = 2
	cli, err := DialWith(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	start := time.Now()
	if _, err := cli.Get("k"); err == nil {
		t.Fatal("Get against black hole succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline not enforced: took %v", elapsed)
	}
	if st := cli.Stats(); st.Timeouts == 0 {
		t.Fatalf("no timeouts recorded: %+v", st)
	}
}

func TestClientNoRetryOnNotFound(t *testing.T) {
	_, cli := startServer(t)
	if _, err := cli.Get("missing"); !errors.As(err, &ErrNotFound{}) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if st := cli.Stats(); st.Retries != 0 {
		t.Fatalf("not-found burned retries: %+v", st)
	}
}

func TestClientNoRetryOnServerError(t *testing.T) {
	_, cli := startServer(t)
	// Empty key on a key-addressed op draws a '!' server response.
	if err := cli.Put("", []byte("v")); err == nil {
		t.Fatal("empty-key put accepted")
	}
	if st := cli.Stats(); st.Retries != 0 {
		t.Fatalf("server error burned retries: %+v", st)
	}
}

func TestClientCloseConcurrent(t *testing.T) {
	leaktest.Check(t)
	_, cli := startServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_ = cli.Put("k", []byte("v"))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(time.Millisecond)
		if err := cli.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	wg.Wait()
	if err := cli.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := cli.Put("k", []byte("v")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("op after Close = %v, want ErrClientClosed", err)
	}
}

func TestClientSurvivesServerRestart(t *testing.T) {
	leaktest.Check(t)
	// Bind a listener, serve, close the whole server, restart on the
	// same port: the client must redial transparently.
	srv1 := NewServer(nil)
	addr, err := srv1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialWith(addr, DialOptions{
		OpTimeout: 200 * time.Millisecond, Attempts: 20,
		BackoffBase: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(nil)
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("port %s not immediately reusable: %v", addr, err)
	}
	defer srv2.Close()
	if err := cli.Put("b", []byte("2")); err != nil {
		t.Fatalf("put after restart: %v", err)
	}
	if st := cli.Stats(); st.Reconnects == 0 {
		t.Fatalf("no reconnect recorded: %+v", st)
	}
}

func TestDialOptionsDefaults(t *testing.T) {
	o := DialOptions{}.withDefaults()
	if o.DialTimeout != defaultDialTimeout || o.OpTimeout != defaultOpTimeout ||
		o.Attempts != defaultAttempts || o.BackoffBase != defaultBackoffBase ||
		o.BackoffMax != defaultBackoffMax {
		t.Fatalf("defaults wrong: %+v", o)
	}
	// Explicit values survive.
	o = DialOptions{OpTimeout: -1, Attempts: 7}.withDefaults()
	if o.OpTimeout != -1 || o.Attempts != 7 {
		t.Fatalf("explicit values clobbered: %+v", o)
	}
}

func TestClientBackoffBounded(t *testing.T) {
	cli := &Client{opts: DialOptions{
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  80 * time.Millisecond,
	}.withDefaults()}
	cli.jitter = rng.New(1)
	for attempt := 1; attempt < 40; attempt++ {
		d := cli.backoff(attempt)
		if d <= 0 || d > 80*time.Millisecond*3/2 {
			t.Fatalf("backoff(%d) = %v out of bounds", attempt, d)
		}
	}
}
