package cache

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"stellaris/internal/replay"
)

// FuzzCodecRoundTrip drives the gob wire codec from both directions
// with one input:
//
//  1. Adversarial decode — the raw fuzz bytes are fed to every Decode*
//     entry point, which must reject garbage with an error, never
//     panic. This is the path a corrupted cache payload takes (the
//     chaos proxy produces exactly these inputs at runtime).
//  2. Structured round trip — the same bytes deterministically seed a
//     WeightsMsg/GradMsg/Trajectory, which must survive
//     encode → decode bit-for-bit.
//
// The seed corpus below plus the checked-in files under
// testdata/fuzz/FuzzCodecRoundTrip replay on every plain `go test`
// run; `make fuzz-short` additionally explores new inputs for a few
// seconds. Guarded by testing.Short so `make race` stays fast.
func FuzzCodecRoundTrip(f *testing.F) {
	if testing.Short() {
		f.Skip("codec fuzz corpus replay skipped in -short")
	}

	// Deterministic seeds: empty, truncated header, a valid encoding of
	// each payload family, and a flipped-byte corruption of one.
	f.Add([]byte{})
	f.Add([]byte{0x03, 0xff})
	if b, err := EncodeWeights(&WeightsMsg{Version: 7, Weights: []float64{0.5, -1.25, math.Pi}}); err == nil {
		f.Add(b)
		corrupt := append([]byte(nil), b...)
		corrupt[len(corrupt)/2] ^= 0x40
		f.Add(corrupt)
	}
	if b, err := EncodeGrad(&GradMsg{LearnerID: 3, BornVersion: 11, Grad: []float64{1, 2, 3}, Samples: 64, MeanRatio: 1.01, MinRatio: 0.4, KL: 0.02, Entropy: 1.3}); err == nil {
		f.Add(b)
	}
	if b, err := EncodeTrajectory(&replay.Trajectory{
		ActorID: 1, PolicyVersion: 5,
		Steps:          []replay.Step{{Obs: []float64{1, 0}, Action: []float64{1}, Reward: 0.5, LogProb: -0.7, DistParams: []float64{0.1, 0.9}}},
		EpisodeReturns: []float64{12.5},
	}); err == nil {
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. Decoders must never panic on arbitrary bytes.
		if w, err := DecodeWeights(data); err == nil && w == nil {
			t.Fatal("DecodeWeights: nil message without error")
		}
		if g, err := DecodeGrad(data); err == nil && g == nil {
			t.Fatal("DecodeGrad: nil message without error")
		}
		if tr, err := DecodeTrajectory(data); err == nil && tr == nil {
			t.Fatal("DecodeTrajectory: nil trajectory without error")
		}

		// 2. Messages derived from the input must round-trip exactly.
		w := weightsFromBytes(data)
		wb, err := EncodeWeights(w)
		if err != nil {
			t.Fatalf("EncodeWeights(%+v): %v", w, err)
		}
		w2, err := DecodeWeights(wb)
		if err != nil {
			t.Fatalf("DecodeWeights(EncodeWeights): %v", err)
		}
		if w2.Version != w.Version || !float64sEqual(w2.Weights, w.Weights) {
			t.Fatalf("weights round trip mismatch: %+v != %+v", w2, w)
		}

		g := gradFromBytes(data)
		gb, err := EncodeGrad(g)
		if err != nil {
			t.Fatalf("EncodeGrad: %v", err)
		}
		g2, err := DecodeGrad(gb)
		if err != nil {
			t.Fatalf("DecodeGrad(EncodeGrad): %v", err)
		}
		if g2.LearnerID != g.LearnerID || g2.BornVersion != g.BornVersion ||
			g2.Samples != g.Samples || !sameFloat(g2.MeanRatio, g.MeanRatio) ||
			!sameFloat(g2.MinRatio, g.MinRatio) || !sameFloat(g2.KL, g.KL) ||
			!sameFloat(g2.Entropy, g.Entropy) || !float64sEqual(g2.Grad, g.Grad) {
			t.Fatalf("grad round trip mismatch: %+v != %+v", g2, g)
		}
	})
}

// weightsFromBytes deterministically builds a WeightsMsg from fuzz
// input: first byte is the version, the rest become weights.
func weightsFromBytes(data []byte) *WeightsMsg {
	w := &WeightsMsg{}
	if len(data) > 0 {
		w.Version = int(data[0])
		data = data[1:]
	}
	w.Weights = floatsFromBytes(data, 256)
	return w
}

// gradFromBytes deterministically builds a GradMsg from fuzz input.
func gradFromBytes(data []byte) *GradMsg {
	g := &GradMsg{}
	take := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	g.LearnerID = int(take())
	g.BornVersion = int(take())
	g.Samples = int(take())
	g.MeanRatio = float64(take()) / 16
	g.MinRatio = float64(take()) / 16
	g.KL = float64(take()) / 256
	g.Entropy = float64(take()) / 32
	g.Grad = floatsFromBytes(data, 256)
	return g
}

// floatsFromBytes packs data into float64 words, replacing NaN (gob
// round-trips NaN but NaN != NaN makes comparison ambiguous) with a
// fixed finite value. Capped so a huge fuzz input cannot balloon the
// encode.
func floatsFromBytes(data []byte, max int) []float64 {
	n := len(data) / 8
	if n > max {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		if math.IsNaN(v) {
			v = 0.125
		}
		out[i] = v
	}
	return out
}

func float64sEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameFloat(a[i], b[i]) {
			return false
		}
	}
	return true
}

// sameFloat treats ±0 as distinct and has no NaN inputs by
// construction; bit equality is the round-trip contract.
func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// FuzzFrameDecode hammers the length-prefixed wire framing (net.go)
// with raw bytes: readFrame/readResp must error on garbage, never
// panic or over-allocate past the frame cap, and a frame they accept
// must re-encode to the same bytes they consumed.
func FuzzFrameDecode(f *testing.F) {
	if testing.Short() {
		f.Skip("frame fuzz corpus replay skipped in -short")
	}
	var good bytes.Buffer
	if err := writeFrame(&good, 'P', "weights/latest", []byte("payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{0, 0, 0, 5, 'G', 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bytes.NewReader(data))
		if err == nil {
			var buf bytes.Buffer
			if err := writeFrame(&buf, fr.op, fr.key, fr.value); err != nil {
				t.Fatalf("writeFrame(readFrame): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
				t.Fatalf("frame re-encode mismatch:\n got %x\nwant %x", buf.Bytes(), data[:buf.Len()])
			}
		}
		_, _, _ = readResp(bytes.NewReader(data))
	})
}
