package cache

import (
	"testing"

	"stellaris/internal/replay"
)

func BenchmarkMemCachePutGet(b *testing.B) {
	c := NewMemCache()
	val := make([]byte, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put("k", val); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Get("k"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetRoundTrip measures one weights-sized PUT+GET over the real
// TCP protocol — the learner's policy-pull path.
func BenchmarkNetRoundTrip(b *testing.B) {
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	val := make([]byte, 1<<17) // ~130 KB ≈ a small policy
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.Put("weights", val); err != nil {
			b.Fatal(err)
		}
		if _, err := cli.Get("weights"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDecodeTrajectory(b *testing.B) {
	traj := &replay.Trajectory{ActorID: 1, PolicyVersion: 2}
	for i := 0; i < 128; i++ {
		traj.Steps = append(traj.Steps, replay.Step{
			Obs:        make([]float64, 11),
			Action:     make([]float64, 3),
			Reward:     1,
			LogProb:    -0.5,
			DistParams: make([]float64, 6),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := EncodeTrajectory(traj)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeTrajectory(raw); err != nil {
			b.Fatal(err)
		}
	}
}
