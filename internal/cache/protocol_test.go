package cache

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

// rawServer starts a Server and returns its address for raw (non-Client)
// connections that speak malformed protocol on purpose.
func rawServer(t *testing.T) string {
	t.Helper()
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	return conn
}

// expectClosed asserts the server closes the connection without sending
// a response.
func expectClosed(t *testing.T, conn net.Conn) {
	t.Helper()
	buf := make([]byte, 1)
	n, err := conn.Read(buf)
	if err == nil || n > 0 {
		t.Fatalf("server answered a malformed frame (n=%d err=%v); want close", n, err)
	}
}

// checkHealthy asserts the server still serves clean clients.
func checkHealthy(t *testing.T, addr string) {
	t.Helper()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatalf("server unreachable after abuse: %v", err)
	}
	defer cli.Close()
	if err := cli.Put("health", []byte("ok")); err != nil {
		t.Fatalf("server unhealthy after abuse: %v", err)
	}
}

func TestServerOversizedFrame(t *testing.T) {
	addr := rawServer(t)
	conn := rawDial(t, addr)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, conn)
	checkHealthy(t, addr)
}

func TestServerUndersizedFrame(t *testing.T) {
	addr := rawServer(t)
	conn := rawDial(t, addr)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 2) // below the 5-byte minimum
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, conn)
	checkHealthy(t, addr)
}

func TestServerTruncatedFrame(t *testing.T) {
	addr := rawServer(t)
	conn := rawDial(t, addr)
	// Announce 100 bytes, send only the op byte, then hang up.
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[0:4], 100)
	hdr[4] = 'G'
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	checkHealthy(t, addr)
}

func TestServerBadKeyLength(t *testing.T) {
	addr := rawServer(t)
	conn := rawDial(t, addr)
	// keyLen larger than the frame body.
	body := make([]byte, 5)
	body[0] = 'G'
	binary.BigEndian.PutUint32(body[1:5], 9999)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := conn.Write(append(hdr[:], body...)); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, conn)
	checkHealthy(t, addr)
}

func TestServerUnknownOpcode(t *testing.T) {
	addr := rawServer(t)
	conn := rawDial(t, addr)
	if err := writeFrame(conn, 'Z', "key", nil); err != nil {
		t.Fatal(err)
	}
	status, payload, err := readResp(conn)
	if err != nil {
		t.Fatalf("no response to unknown opcode: %v", err)
	}
	if status != '!' || len(payload) == 0 {
		t.Fatalf("unknown opcode → status %q payload %q; want '!'", status, payload)
	}
	checkHealthy(t, addr)
}

func TestServerEmptyKeyOps(t *testing.T) {
	addr := rawServer(t)
	for _, op := range []byte{'P', 'G', 'D', 'I'} {
		conn := rawDial(t, addr)
		if err := writeFrame(conn, op, "", []byte("v")); err != nil {
			t.Fatal(err)
		}
		status, payload, err := readResp(conn)
		if err != nil {
			t.Fatalf("op %q: no response to empty key: %v", op, err)
		}
		if status != '!' {
			t.Fatalf("op %q empty key → status %q payload %q; want '!'", op, status, payload)
		}
	}
	// 'K' (prefix scan) and 'L' (len) accept an empty operand.
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Keys(""); err != nil {
		t.Fatalf("Keys(\"\"): %v", err)
	}
	if _, err := cli.Len(); err != nil {
		t.Fatalf("Len(): %v", err)
	}
}

func TestServerGarbageAfterValidRequest(t *testing.T) {
	addr := rawServer(t)
	conn := rawDial(t, addr)
	if err := writeFrame(conn, 'P', "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if status, _, err := readResp(conn); err != nil || status != '+' {
		t.Fatalf("clean put failed: %q %v", status, err)
	}
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, conn)
	checkHealthy(t, addr)
}

func TestReadFrameRejectsCorruptLengths(t *testing.T) {
	// Unit-level guard on the parser itself.
	for _, raw := range [][]byte{
		{0xFF, 0xFF, 0xFF, 0xFF},    // > maxFrame
		{0, 0, 0, 1},                // < min frame
		{0, 0, 0, 10, 'G', 0, 0, 0}, // truncated body
	} {
		if _, err := readFrame(newByteReader(raw)); err == nil {
			t.Fatalf("readFrame accepted corrupt input %v", raw)
		}
	}
}

type byteReader struct {
	data []byte
	off  int
}

func newByteReader(b []byte) *byteReader { return &byteReader{data: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
