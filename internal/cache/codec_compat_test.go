package cache

import (
	"bytes"
	"encoding/gob"
	"testing"

	"stellaris/internal/obs/lineage"
	"stellaris/internal/replay"
)

// The Trace fields added to the wire payloads must not break the cache
// protocol in either direction: payloads gob-encoded by a pre-tracing
// build decode on a current one (Trace stays zero), and payloads from a
// current build decode on a pre-tracing one (Trace is skipped). These
// legacy struct shapes are frozen copies of the pre-tracing schema.

type legacyWeightsMsg struct {
	Version int
	Weights []float64
}

type legacyGradMsg struct {
	LearnerID   int
	BornVersion int
	Grad        []float64
	Samples     int
	MeanRatio   float64
	MinRatio    float64
	KL          float64
	Entropy     float64
}

type legacyStep struct {
	Obs        []float64
	Action     []float64
	Reward     float64
	Done       bool
	LogProb    float64
	DistParams []float64
}

type legacyTrajectory struct {
	ActorID        int
	PolicyVersion  int
	Steps          []legacyStep
	EpisodeReturns []float64
}

func gobBytes(t *testing.T, v interface{}) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCodecDecodesLegacyPayloads(t *testing.T) {
	w, err := DecodeWeights(gobBytes(t, &legacyWeightsMsg{Version: 7, Weights: []float64{1, 2}}))
	if err != nil {
		t.Fatalf("legacy weights payload rejected: %v", err)
	}
	if w.Version != 7 || len(w.Weights) != 2 || w.Trace != (lineage.Meta{}) {
		t.Fatalf("legacy weights decoded wrong: %+v", w)
	}

	g, err := DecodeGrad(gobBytes(t, &legacyGradMsg{LearnerID: 3, BornVersion: 5, Grad: []float64{0.5}, Samples: 32}))
	if err != nil {
		t.Fatalf("legacy gradient payload rejected: %v", err)
	}
	if g.LearnerID != 3 || g.BornVersion != 5 || g.Truncated != 0 || g.Trace != (lineage.Meta{}) {
		t.Fatalf("legacy gradient decoded wrong: %+v", g)
	}

	tr, err := DecodeTrajectory(gobBytes(t, &legacyTrajectory{
		ActorID: 1, PolicyVersion: 4,
		Steps: []legacyStep{{Obs: []float64{0.1}, Action: []float64{1}, Reward: 1}},
	}))
	if err != nil {
		t.Fatalf("legacy trajectory payload rejected: %v", err)
	}
	if tr.ActorID != 1 || tr.PolicyVersion != 4 || len(tr.Steps) != 1 || tr.Trace != (lineage.Meta{}) {
		t.Fatalf("legacy trajectory decoded wrong: %+v", tr)
	}
}

// TestLegacyDecodersSkipTrace pins the gob fallback's interop promise:
// a payload encoded with CodecGob — what a negotiated connection sends
// an old peer — must decode on a pre-tracing build, with the Trace
// field silently skipped.
func TestLegacyDecodersSkipTrace(t *testing.T) {
	meta := lineage.Meta{ID: "grad/0/0", Kind: lineage.KindGradient, Origin: "learner/0#0", Parent: "weights/3"}

	wb, err := EncodeWeightsWith(CodecGob, &WeightsMsg{Version: 9, Weights: []float64{3}, Trace: lineage.Meta{ID: "weights/9", Kind: lineage.KindWeights}})
	if err != nil {
		t.Fatal(err)
	}
	var lw legacyWeightsMsg
	if err := gob.NewDecoder(bytes.NewReader(wb)).Decode(&lw); err != nil {
		t.Fatalf("old client cannot decode traced weights: %v", err)
	}
	if lw.Version != 9 || len(lw.Weights) != 1 {
		t.Fatalf("old client decoded wrong: %+v", lw)
	}

	gb, err := EncodeGradWith(CodecGob, &GradMsg{LearnerID: 2, BornVersion: 3, Grad: []float64{1}, Truncated: 4, Trace: meta})
	if err != nil {
		t.Fatal(err)
	}
	var lg legacyGradMsg
	if err := gob.NewDecoder(bytes.NewReader(gb)).Decode(&lg); err != nil {
		t.Fatalf("old client cannot decode traced gradient: %v", err)
	}
	if lg.LearnerID != 2 || lg.BornVersion != 3 {
		t.Fatalf("old client decoded wrong: %+v", lg)
	}

	tb, err := EncodeTrajectoryWith(CodecGob, &replay.Trajectory{
		ActorID: 5, PolicyVersion: 6,
		Steps: []replay.Step{{Obs: []float64{1}, Action: []float64{0}}},
		Trace: lineage.Meta{ID: "traj/5/0", Kind: lineage.KindTrajectory},
	})
	if err != nil {
		t.Fatal(err)
	}
	var lt legacyTrajectory
	if err := gob.NewDecoder(bytes.NewReader(tb)).Decode(&lt); err != nil {
		t.Fatalf("old client cannot decode traced trajectory: %v", err)
	}
	if lt.ActorID != 5 || lt.PolicyVersion != 6 || len(lt.Steps) != 1 {
		t.Fatalf("old client decoded wrong: %+v", lt)
	}
}

// TestClientLineageHops checks the client records put/fetched hops for
// data keys when wired with a lineage store.
func TestClientLineageHops(t *testing.T) {
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var now float64
	lin := lineage.New(func() float64 { now++; return now }, lineage.Options{})
	cli, err := DialWith(addr, DialOptions{Lineage: lin, LineageName: "actor/0#0"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if err := cli.Put("traj/0/0", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Get("traj/0/0"); err != nil {
		t.Fatal(err)
	}
	// Non-data keys must not pollute the trace store.
	if err := cli.Put("weights/latest", []byte("y")); err != nil {
		t.Fatal(err)
	}

	tl := lin.Timeline("traj/0/0")
	if len(tl) != 2 || tl[0].Hop != lineage.HopPut || tl[1].Hop != lineage.HopFetched {
		t.Fatalf("client hops: %+v", tl)
	}
	if tl[0].Actor != "actor/0#0" {
		t.Fatalf("hop actor %q", tl[0].Actor)
	}
	if got := lin.Timeline("weights/latest"); got != nil {
		t.Fatalf("non-data key traced: %+v", got)
	}
}
