package cache

import (
	"bytes"
	"testing"
	"time"
)

// proxiedServer stands up server ← proxy ← client with the given fault
// config and fast client-side retry policy.
func proxiedServer(t *testing.T, cfg FaultConfig, opts DialOptions) (*FaultProxy, *Client) {
	t.Helper()
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proxy := NewFaultProxy(addr, cfg)
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialWith(paddr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cli.Close()
		proxy.Close()
		srv.Close()
	})
	return proxy, cli
}

func TestFaultProxyTransparentWhenQuiet(t *testing.T) {
	_, cli := proxiedServer(t, FaultConfig{}, fastOpts())
	payload := bytes.Repeat([]byte{0x42}, 100_000)
	if err := cli.Put("w", payload); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Get("w")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted through quiet proxy: %v", err)
	}
	if st := cli.Stats(); st.Retries != 0 || st.Reconnects != 0 {
		t.Fatalf("quiet proxy caused retries: %+v", st)
	}
}

func TestFaultProxyDropsRecovered(t *testing.T) {
	opts := fastOpts()
	opts.OpTimeout = 100 * time.Millisecond
	opts.Attempts = 30
	proxy, cli := proxiedServer(t, FaultConfig{DropRate: 0.3, Seed: 11}, opts)
	for i := 0; i < 10; i++ {
		if err := cli.Put("k", []byte("v")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if proxy.Stats().Drops == 0 {
		t.Fatal("no drops injected at 30% drop rate")
	}
	if cli.Stats().Retries == 0 {
		t.Fatal("drops recovered without retries?")
	}
}

func TestFaultProxyClosesRecovered(t *testing.T) {
	opts := fastOpts()
	opts.Attempts = 30
	proxy, cli := proxiedServer(t, FaultConfig{CloseRate: 0.2, Seed: 12}, opts)
	for i := 0; i < 10; i++ {
		if err := cli.Put("k", []byte("v")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	st := proxy.Stats()
	if st.Closes == 0 {
		t.Fatal("no closes injected at 20% close rate")
	}
	if cli.Stats().Reconnects == 0 {
		t.Fatal("connection closes recovered without reconnects?")
	}
}

func TestFaultProxyCorruptionSurfacesNoPanic(t *testing.T) {
	opts := fastOpts()
	opts.OpTimeout = 100 * time.Millisecond
	opts.Attempts = 30
	proxy, cli := proxiedServer(t, FaultConfig{CorruptRate: 0.5, Seed: 13}, opts)
	// Large payloads guarantee many chunk rolls; ops may or may not
	// fail, but nothing may panic and the server must stay up.
	payload := bytes.Repeat([]byte{7}, 50_000)
	for i := 0; i < 5; i++ {
		_ = cli.Put("k", payload)
		_, _ = cli.Get("k")
	}
	if proxy.Stats().Corruptions == 0 {
		t.Fatal("no corruptions injected at 50% corrupt rate")
	}
	// The server must still answer a clean client.
	cli2, err := Dial(proxyTarget(proxy))
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if err := cli2.Put("sane", []byte("ok")); err != nil {
		t.Fatalf("server unhealthy after corruption storm: %v", err)
	}
}

func proxyTarget(p *FaultProxy) string { return p.target }

func TestFaultProxyDelay(t *testing.T) {
	proxy, cli := proxiedServer(t, FaultConfig{
		DelayRate: 1.0, MaxDelay: 2 * time.Millisecond, Seed: 14,
	}, fastOpts())
	for i := 0; i < 5; i++ {
		if err := cli.Put("k", []byte("v")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if proxy.Stats().Delays == 0 {
		t.Fatal("no delays injected at 100% delay rate")
	}
}

func TestFaultProxyCloseIdempotentAndSeversConns(t *testing.T) {
	proxy, cli := proxiedServer(t, FaultConfig{}, DialOptions{
		OpTimeout: 100 * time.Millisecond, Attempts: 1,
	})
	if err := cli.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}
	if err := proxy.Close(); err != nil {
		t.Fatal("second Close errored")
	}
	// The proxied connection is gone and the proxy no longer listens;
	// with Attempts=1 the next op must fail.
	if err := cli.Put("k", []byte("v")); err == nil {
		t.Fatal("op through closed proxy succeeded")
	}
}

func TestFaultProxyUnreachableTarget(t *testing.T) {
	proxy := NewFaultProxy("127.0.0.1:1", FaultConfig{}) // nothing listens
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	cli, err := DialWith(paddr, DialOptions{
		OpTimeout: 100 * time.Millisecond, Attempts: 2,
		BackoffBase: time.Millisecond,
	})
	if err != nil {
		// Accept may race the upstream dial failure; either outcome —
		// dial error or op error below — is a clean failure.
		return
	}
	defer cli.Close()
	if err := cli.Put("k", []byte("v")); err == nil {
		t.Fatal("op through proxy with dead upstream succeeded")
	}
}
