package cache

// Hand-rolled binary codec for the three hot payload families
// (trajectories, gradients, weight vectors) plus the delta weight
// message. The wire format is documented in DESIGN.md §10; the short
// version:
//
//	[4]byte magic "SLB1"
//	u8     payload kind (1=weights 2=grad 3=trajectory 4=weights-delta)
//	u8     codec version (1)
//	u16    reserved (0)
//	u32    TLV section offset from payload start (0 = no TLV section)
//	...    kind-specific body, fixed-width little-endian fields and
//	       float64 slabs written as raw IEEE-754 bit patterns
//	...    TLV section: repeated [u8 tag][u32 len][len bytes] to the
//	       end of the payload; unknown tags are skipped
//
// TLV tag 1 carries the lineage Meta trace context (see
// lineage.Meta.AppendBinary). Everything is little-endian; float64
// values round-trip bit-exactly via math.Float64bits, which is what
// lets lockstep determinism checks pass across an encode/decode cycle.
//
// Encoders size the payload exactly, draw the backing buffer from a
// sync.Pool, and append straight-line — steady-state encoding is
// allocation-free once callers return buffers with Recycle. Decoders
// validate every count against the bytes actually remaining before
// allocating, so adversarial inputs fail with an error instead of a
// panic or an outsized allocation (FuzzBinCodecRoundTrip enforces
// this).

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"stellaris/internal/obs/lineage"
	"stellaris/internal/replay"
)

const (
	binMagic   = "SLB1"
	binVersion = 1
	binHeader  = 12 // magic + kind + version + reserved + tlvOff

	binKindWeights    = 1
	binKindGrad       = 2
	binKindTrajectory = 3
	binKindDelta      = 4

	tlvTagMeta = 1
)

// IsBinaryPayload reports whether b carries the binary codec magic.
// Decoders use it to sniff binary frames apart from legacy gob ones.
func IsBinaryPayload(b []byte) bool {
	return len(b) >= binHeader && string(b[:4]) == binMagic
}

// ---- frame buffer pool ----

var framePool sync.Pool

// grabFrame returns a zero-length buffer with capacity ≥ n, reusing a
// pooled one when possible.
func grabFrame(n int) []byte {
	if p, _ := framePool.Get().(*[]byte); p != nil && cap(*p) >= n {
		return (*p)[:0]
	}
	return make([]byte, 0, n)
}

// Recycle returns an encoded payload's buffer to the codec frame pool.
// Callers may recycle a buffer as soon as the bytes have been handed
// off (Client.Put writes before returning; MemCache.Put copies), and
// must not touch it afterwards. Recycling buffers the codec did not
// produce is harmless.
func Recycle(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	framePool.Put(&b)
}

// ---- append-side helpers ----

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendI64(b []byte, v int64) []byte  { return binary.LittleEndian.AppendUint64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// appendF64Raw appends the raw bit patterns of xs (no count prefix).
func appendF64Raw(b []byte, xs []float64) []byte {
	for _, v := range xs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// appendF64Slab appends a u32 count followed by the raw bit patterns.
func appendF64Slab(b []byte, xs []float64) []byte {
	b = appendU32(b, uint32(len(xs)))
	return appendF64Raw(b, xs)
}

func appendBinHeader(b []byte, kind byte, tlvOff int) []byte {
	b = append(b, binMagic...)
	b = append(b, kind, binVersion, 0, 0)
	return appendU32(b, uint32(tlvOff))
}

func metaTLVSize(m *lineage.Meta) int {
	if m.IsZero() {
		return 0
	}
	return 5 + m.WireSize()
}

func appendMetaTLV(b []byte, m *lineage.Meta) []byte {
	b = append(b, tlvTagMeta)
	b = appendU32(b, uint32(m.WireSize()))
	return m.AppendBinary(b)
}

// ---- read-side helpers ----

// binReader is an error-latching cursor over one payload region. Every
// variable-length read validates its count against the bytes remaining
// BEFORE allocating, which is the codec's defense against adversarial
// length fields.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("cache: bincodec: "+format, args...)
	}
}

func (r *binReader) remaining() int { return len(r.b) - r.off }

func (r *binReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.remaining() < n {
		r.fail("truncated payload: need %d bytes at offset %d, have %d", n, r.off, r.remaining())
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *binReader) u8() byte {
	if s := r.take(1); s != nil {
		return s[0]
	}
	return 0
}

func (r *binReader) u32() uint32 {
	if s := r.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

func (r *binReader) i64() int64 {
	if s := r.take(8); s != nil {
		return int64(binary.LittleEndian.Uint64(s))
	}
	return 0
}

func (r *binReader) f64() float64 {
	if s := r.take(8); s != nil {
		return math.Float64frombits(binary.LittleEndian.Uint64(s))
	}
	return 0
}

// f64Raw reads n raw float64 values (take-then-allocate).
func (r *binReader) f64Raw(n int) []float64 {
	raw := r.take(8 * n)
	if raw == nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

// f64Slab reads a u32-counted float64 slab.
func (r *binReader) f64Slab() []float64 {
	return r.f64Raw(int(r.u32()))
}

// finish enforces full consumption of the payload region.
func (r *binReader) finish() error {
	if r.err == nil && r.remaining() != 0 {
		r.fail("%d trailing bytes after payload body", r.remaining())
	}
	return r.err
}

// openBin validates the header and TLV section of a binary payload and
// returns its kind, a reader positioned over the body, and the decoded
// lineage meta (zero when absent).
func openBin(b []byte) (byte, *binReader, lineage.Meta, error) {
	var meta lineage.Meta
	if !IsBinaryPayload(b) {
		return 0, nil, meta, fmt.Errorf("cache: bincodec: missing %q magic", binMagic)
	}
	kind := b[4]
	if v := b[5]; v != binVersion {
		return 0, nil, meta, fmt.Errorf("cache: bincodec: unsupported codec version %d", v)
	}
	tlvOff := int(binary.LittleEndian.Uint32(b[8:12]))
	bodyEnd := len(b)
	if tlvOff != 0 {
		if tlvOff < binHeader || tlvOff > len(b) {
			return 0, nil, meta, fmt.Errorf("cache: bincodec: TLV offset %d out of range [%d,%d]", tlvOff, binHeader, len(b))
		}
		bodyEnd = tlvOff
		tlv := b[tlvOff:]
		for len(tlv) > 0 {
			if len(tlv) < 5 {
				return 0, nil, meta, fmt.Errorf("cache: bincodec: truncated TLV header (%d bytes)", len(tlv))
			}
			tag := tlv[0]
			n := int(binary.LittleEndian.Uint32(tlv[1:5]))
			tlv = tlv[5:]
			if n < 0 || n > len(tlv) {
				return 0, nil, meta, fmt.Errorf("cache: bincodec: TLV tag %d length %d exceeds %d remaining", tag, n, len(tlv))
			}
			if tag == tlvTagMeta {
				m, err := lineage.MetaFromBinary(tlv[:n])
				if err != nil {
					return 0, nil, meta, fmt.Errorf("cache: bincodec: TLV meta: %w", err)
				}
				meta = m
			} // unknown tags: skip (forward compatibility)
			tlv = tlv[n:]
		}
	}
	return kind, &binReader{b: b[binHeader:bodyEnd]}, meta, nil
}

// ---- weights ----

func appendWeightsBin(w *WeightsMsg) []byte {
	body := 8 + 4 + 8*len(w.Weights)
	tlv := metaTLVSize(&w.Trace)
	tlvOff := 0
	if tlv > 0 {
		tlvOff = binHeader + body
	}
	buf := grabFrame(binHeader + body + tlv)
	buf = appendBinHeader(buf, binKindWeights, tlvOff)
	buf = appendI64(buf, int64(w.Version))
	buf = appendF64Slab(buf, w.Weights)
	if tlv > 0 {
		buf = appendMetaTLV(buf, &w.Trace)
	}
	return buf
}

func decodeWeightsBin(b []byte) (*WeightsMsg, error) {
	kind, r, meta, err := openBin(b)
	if err != nil {
		return nil, err
	}
	if kind != binKindWeights {
		return nil, fmt.Errorf("cache: bincodec: payload kind %d is not a weights message", kind)
	}
	w := &WeightsMsg{Trace: meta}
	w.Version = int(r.i64())
	w.Weights = r.f64Slab()
	if err := r.finish(); err != nil {
		return nil, err
	}
	return w, nil
}

// ---- gradients ----

func appendGradBin(g *GradMsg) []byte {
	body := 4*8 + 4*8 + 4 + 8*len(g.Grad)
	tlv := metaTLVSize(&g.Trace)
	tlvOff := 0
	if tlv > 0 {
		tlvOff = binHeader + body
	}
	buf := grabFrame(binHeader + body + tlv)
	buf = appendBinHeader(buf, binKindGrad, tlvOff)
	buf = appendI64(buf, int64(g.LearnerID))
	buf = appendI64(buf, int64(g.BornVersion))
	buf = appendI64(buf, int64(g.Samples))
	buf = appendI64(buf, int64(g.Truncated))
	buf = appendF64(buf, g.MeanRatio)
	buf = appendF64(buf, g.MinRatio)
	buf = appendF64(buf, g.KL)
	buf = appendF64(buf, g.Entropy)
	buf = appendF64Slab(buf, g.Grad)
	if tlv > 0 {
		buf = appendMetaTLV(buf, &g.Trace)
	}
	return buf
}

func decodeGradBin(b []byte) (*GradMsg, error) {
	kind, r, meta, err := openBin(b)
	if err != nil {
		return nil, err
	}
	if kind != binKindGrad {
		return nil, fmt.Errorf("cache: bincodec: payload kind %d is not a gradient message", kind)
	}
	g := &GradMsg{Trace: meta}
	g.LearnerID = int(r.i64())
	g.BornVersion = int(r.i64())
	g.Samples = int(r.i64())
	g.Truncated = int(r.i64())
	g.MeanRatio = r.f64()
	g.MinRatio = r.f64()
	g.KL = r.f64()
	g.Entropy = r.f64()
	g.Grad = r.f64Slab()
	if err := r.finish(); err != nil {
		return nil, err
	}
	return g, nil
}

// ---- trajectories ----

// trajDims reports whether every step shares the dimensions of the
// first one; if so the trajectory is encoded column-wise as whole-field
// slabs (the overwhelmingly common case — actors sample a fixed env).
func trajDims(t *replay.Trajectory) (obsDim, actDim, dpDim int, homogeneous bool) {
	if len(t.Steps) == 0 {
		return 0, 0, 0, true
	}
	s0 := &t.Steps[0]
	obsDim, actDim, dpDim = len(s0.Obs), len(s0.Action), len(s0.DistParams)
	for i := 1; i < len(t.Steps); i++ {
		s := &t.Steps[i]
		if len(s.Obs) != obsDim || len(s.Action) != actDim || len(s.DistParams) != dpDim {
			return 0, 0, 0, false
		}
	}
	return obsDim, actDim, dpDim, true
}

func appendTrajectoryBin(t *replay.Trajectory) []byte {
	n := len(t.Steps)
	obsDim, actDim, dpDim, homo := trajDims(t)

	body := 8 + 8 + 4 + 1 // actorID, policyVersion, nSteps, layout flag
	if homo {
		body += 3*4 + 8*n + 8*n + (n+7)/8 // dims, rewards, logprobs, done bitset
		body += 8 * n * (obsDim + actDim + dpDim)
	} else {
		for i := range t.Steps {
			s := &t.Steps[i]
			body += 4 + 8*len(s.Obs) + 4 + 8*len(s.Action) + 8 + 1 + 8 + 4 + 8*len(s.DistParams)
		}
	}
	body += 4 + 8*len(t.EpisodeReturns)
	tlv := metaTLVSize(&t.Trace)
	tlvOff := 0
	if tlv > 0 {
		tlvOff = binHeader + body
	}

	buf := grabFrame(binHeader + body + tlv)
	buf = appendBinHeader(buf, binKindTrajectory, tlvOff)
	buf = appendI64(buf, int64(t.ActorID))
	buf = appendI64(buf, int64(t.PolicyVersion))
	buf = appendU32(buf, uint32(n))
	if homo {
		buf = append(buf, 1)
		buf = appendU32(buf, uint32(obsDim))
		buf = appendU32(buf, uint32(actDim))
		buf = appendU32(buf, uint32(dpDim))
		for i := range t.Steps {
			buf = appendF64(buf, t.Steps[i].Reward)
		}
		for i := range t.Steps {
			buf = appendF64(buf, t.Steps[i].LogProb)
		}
		var acc byte
		for i := range t.Steps {
			if t.Steps[i].Done {
				acc |= 1 << (i % 8)
			}
			if i%8 == 7 {
				buf = append(buf, acc)
				acc = 0
			}
		}
		if n%8 != 0 {
			buf = append(buf, acc)
		}
		for i := range t.Steps {
			buf = appendF64Raw(buf, t.Steps[i].Obs)
		}
		for i := range t.Steps {
			buf = appendF64Raw(buf, t.Steps[i].Action)
		}
		for i := range t.Steps {
			buf = appendF64Raw(buf, t.Steps[i].DistParams)
		}
	} else {
		buf = append(buf, 0)
		for i := range t.Steps {
			s := &t.Steps[i]
			buf = appendF64Slab(buf, s.Obs)
			buf = appendF64Slab(buf, s.Action)
			buf = appendF64(buf, s.Reward)
			if s.Done {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
			buf = appendF64(buf, s.LogProb)
			buf = appendF64Slab(buf, s.DistParams)
		}
	}
	buf = appendF64Slab(buf, t.EpisodeReturns)
	if tlv > 0 {
		buf = appendMetaTLV(buf, &t.Trace)
	}
	return buf
}

// minStepWire is the smallest possible heterogeneous step record:
// three empty slabs plus reward, done, logprob.
const minStepWire = 4 + 4 + 8 + 1 + 8 + 4

func decodeTrajectoryBin(b []byte) (*replay.Trajectory, error) {
	kind, r, meta, err := openBin(b)
	if err != nil {
		return nil, err
	}
	if kind != binKindTrajectory {
		return nil, fmt.Errorf("cache: bincodec: payload kind %d is not a trajectory", kind)
	}
	t := &replay.Trajectory{Trace: meta}
	t.ActorID = int(r.i64())
	t.PolicyVersion = int(r.i64())
	n := int(r.u32())
	layout := r.u8()
	switch layout {
	case 1: // homogeneous column layout
		obsDim := int(r.u32())
		actDim := int(r.u32())
		dpDim := int(r.u32())
		// Bound every count by the frame cap first so the products below
		// cannot overflow, then by what the buffer actually holds, before
		// trusting them for allocation sizes.
		const maxSlab = maxFrame / 8
		if r.err == nil && (n > maxSlab || obsDim > maxSlab || actDim > maxSlab || dpDim > maxSlab) {
			r.fail("trajectory counts (n=%d dims=%d/%d/%d) exceed the frame cap", n, obsDim, actDim, dpDim)
		}
		if r.err == nil {
			need := 8*n + 8*n + (n+7)/8 + 8*n*(obsDim+actDim+dpDim)
			if r.remaining() < need {
				r.fail("trajectory counts (n=%d dims=%d/%d/%d) need %d bytes, have %d", n, obsDim, actDim, dpDim, need, r.remaining())
			}
		}
		rewards := r.f64Raw(n)
		logProbs := r.f64Raw(n)
		doneBits := r.take((n + 7) / 8)
		obs := r.f64Raw(n * obsDim)
		acts := r.f64Raw(n * actDim)
		dps := r.f64Raw(n * dpDim)
		if r.err == nil && n > 0 {
			t.Steps = make([]replay.Step, n)
			for i := range t.Steps {
				s := &t.Steps[i]
				s.Reward = rewards[i]
				s.LogProb = logProbs[i]
				s.Done = doneBits[i/8]&(1<<(i%8)) != 0
				if obsDim > 0 {
					s.Obs = obs[i*obsDim : (i+1)*obsDim : (i+1)*obsDim]
				}
				if actDim > 0 {
					s.Action = acts[i*actDim : (i+1)*actDim : (i+1)*actDim]
				}
				if dpDim > 0 {
					s.DistParams = dps[i*dpDim : (i+1)*dpDim : (i+1)*dpDim]
				}
			}
		}
	case 0: // heterogeneous per-step records
		if r.err == nil && n > 0 {
			if n < 0 || n > r.remaining()/minStepWire {
				r.fail("step count %d exceeds %d remaining bytes", n, r.remaining())
			} else {
				t.Steps = make([]replay.Step, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					var s replay.Step
					s.Obs = r.f64Slab()
					s.Action = r.f64Slab()
					s.Reward = r.f64()
					s.Done = r.u8() != 0
					s.LogProb = r.f64()
					s.DistParams = r.f64Slab()
					t.Steps = append(t.Steps, s)
				}
			}
		}
	default:
		r.fail("unknown trajectory layout %d", layout)
	}
	t.EpisodeReturns = r.f64Slab()
	if err := r.finish(); err != nil {
		return nil, err
	}
	return t, nil
}
