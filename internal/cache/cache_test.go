package cache

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"stellaris/internal/replay"
)

func TestMemCacheBasics(t *testing.T) {
	c := NewMemCache()
	if err := c.Put("a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("a")
	if err != nil || string(v) != "hello" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := c.Get("missing"); !errors.As(err, &ErrNotFound{}) {
		t.Fatalf("missing key error %v", err)
	}
	if err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("a"); err == nil {
		t.Fatal("deleted key still present")
	}
}

func TestMemCacheCopiesValues(t *testing.T) {
	c := NewMemCache()
	buf := []byte{1, 2, 3}
	if err := c.Put("k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	v, _ := c.Get("k")
	if v[0] != 1 {
		t.Fatal("Put did not copy the value")
	}
	v[1] = 99
	v2, _ := c.Get("k")
	if v2[1] != 2 {
		t.Fatal("Get did not copy the value")
	}
}

func TestMemCacheIncr(t *testing.T) {
	c := NewMemCache()
	for want := int64(1); want <= 3; want++ {
		got, err := c.Incr("n")
		if err != nil || got != want {
			t.Fatalf("Incr = %d, %v; want %d", got, err, want)
		}
	}
}

func TestMemCacheKeysPrefix(t *testing.T) {
	c := NewMemCache()
	for _, k := range []string{"traj/2", "traj/1", "grad/1"} {
		if err := c.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := c.Keys("traj/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "traj/1" || keys[1] != "traj/2" {
		t.Fatalf("Keys = %v", keys)
	}
	n, _ := c.Len()
	if n != 3 {
		t.Fatalf("Len = %d", n)
	}
}

func TestMemCacheConcurrent(t *testing.T) {
	c := NewMemCache()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			for j := 0; j < 100; j++ {
				if err := c.Put(key, []byte{byte(j)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Get(key); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Incr("shared"); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	n, _ := c.Incr("shared")
	if n != 2001 {
		t.Fatalf("shared counter %d, want 2001", n)
	}
}

func TestCodecWeights(t *testing.T) {
	msg := &WeightsMsg{Version: 7, Weights: []float64{1.5, -2.25, 0}}
	b, err := EncodeWeights(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWeights(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 7 || len(got.Weights) != 3 || got.Weights[1] != -2.25 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestCodecGrad(t *testing.T) {
	g := &GradMsg{
		LearnerID: 3, BornVersion: 11, Grad: []float64{0.5},
		Samples: 256, MeanRatio: 0.97, MinRatio: 0.4, KL: 0.01, Entropy: 1.2,
	}
	b, err := EncodeGrad(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGrad(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.BornVersion != 11 || got.MeanRatio != 0.97 || got.Samples != 256 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestCodecTrajectory(t *testing.T) {
	traj := &replay.Trajectory{
		ActorID:       2,
		PolicyVersion: 5,
		Steps: []replay.Step{
			{Obs: []float64{1, 2}, Action: []float64{0}, Reward: 1, Done: true,
				LogProb: -0.7, DistParams: []float64{0.1, 0.9}},
		},
		EpisodeReturns: []float64{42},
	}
	b, err := EncodeTrajectory(traj)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrajectory(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.PolicyVersion != 5 || len(got.Steps) != 1 || got.Steps[0].LogProb != -0.7 ||
		got.EpisodeReturns[0] != 42 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeWeights([]byte("not gob")); err == nil {
		t.Fatal("garbage decoded")
	}
}
