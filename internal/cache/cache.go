// Package cache implements Stellaris's Distributed Cache — the
// in-memory key-value buffer (Redis in the paper, §VII) that carries
// trajectories, gradients and policy weights between actors, learner
// functions and the parameter function.
//
// Two implementations share the Cache interface: MemCache, an in-process
// store used by the simulator, and Client, a TCP client speaking a
// small length-prefixed protocol to the standalone server in
// cmd/stellaris-cached (the Redis stand-in). Values are opaque byte
// slices; the Codec helpers gob-encode the structured payloads.
package cache

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound reports a missing key.
type ErrNotFound struct{ Key string }

func (e ErrNotFound) Error() string { return fmt.Sprintf("cache: key %q not found", e.Key) }

// Cache is the key-value surface shared by the in-process store and the
// network client.
//
// Scoping: values (Put/Get) and counters (Incr) live in separate
// namespaces that happen to share key strings. Keys and Len see only
// the *value* namespace — a key touched solely by Incr is invisible to
// both. Delete spans both namespaces: it removes the value AND any Incr
// counter stored under key, so a deleted key restarts counting from
// zero. The TCP server inherits these semantics from MemCache, so
// client and in-process behavior match.
type Cache interface {
	// Put stores val under key, replacing any previous value.
	Put(key string, val []byte) error
	// Get returns the value under key or ErrNotFound.
	Get(key string) ([]byte, error)
	// Delete removes key from both the value and counter namespaces (no
	// error if absent).
	Delete(key string) error
	// Incr atomically increments the counter at key and returns the new
	// value (missing keys start at zero). Counter keys are not listed
	// by Keys and not counted by Len.
	Incr(key string) (int64, error)
	// Keys returns all value keys with the given prefix, sorted.
	Keys(prefix string) ([]string, error)
	// Len returns the number of stored value keys.
	Len() (int, error)
}

// MemCache is an in-process Cache safe for concurrent use. A MemCache
// opened with NewPersistentMemCache additionally journals every mutation
// to disk (see persist.go); the zero-dir form is purely in-memory.
// Replication streams (replica.go) observe mutations through taps
// registered with attachTap.
type MemCache struct {
	mu       sync.RWMutex
	data     map[string][]byte
	counters map[string]int64
	p        *persister
	taps     map[*tap]struct{}
}

// NewMemCache returns an empty in-process cache.
func NewMemCache() *MemCache {
	return &MemCache{
		data:     make(map[string][]byte),
		counters: make(map[string]int64),
	}
}

// Put implements Cache. With persistence enabled the append error (if
// any) is returned after the in-memory write: memory stays the source of
// truth for this process, but the caller learns durability was lost.
func (c *MemCache) Put(key string, val []byte) error {
	cp := make([]byte, len(val))
	copy(cp, val)
	c.mu.Lock()
	c.data[key] = cp
	err := c.logLocked(aofPut, key, cp)
	c.mu.Unlock()
	return err
}

// Get implements Cache.
func (c *MemCache) Get(key string) ([]byte, error) {
	c.mu.RLock()
	v, ok := c.data[key]
	c.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound{Key: key}
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, nil
}

// Delete implements Cache. Both the value and any Incr counter under
// key are removed; leaving the counter alive would resurrect stale
// counts if the key were ever reused.
func (c *MemCache) Delete(key string) error {
	c.mu.Lock()
	delete(c.data, key)
	delete(c.counters, key)
	err := c.logLocked(aofDelete, key, nil)
	c.mu.Unlock()
	return err
}

// Incr implements Cache.
func (c *MemCache) Incr(key string) (int64, error) {
	c.mu.Lock()
	c.counters[key]++
	v := c.counters[key]
	err := c.logLocked(aofIncr, key, nil)
	c.mu.Unlock()
	return v, err
}

// Keys implements Cache.
func (c *MemCache) Keys(prefix string) ([]string, error) {
	c.mu.RLock()
	var out []string
	for k := range c.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out, nil
}

// Len implements Cache.
func (c *MemCache) Len() (int, error) {
	c.mu.RLock()
	n := len(c.data)
	c.mu.RUnlock()
	return n, nil
}

// setCounter installs an absolute counter value — the idempotent form a
// replication full-sync needs, since replaying relative Incrs against
// an unknown base is not. Journaled as aofCounterSet when persistent.
func (c *MemCache) setCounter(key string, v int64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	c.mu.Lock()
	c.counters[key] = v
	err := c.logLocked(aofCounterSet, key, buf[:])
	c.mu.Unlock()
	return err
}

// resetForSync clears the whole store — values and counters — at the
// head of a replication full-sync, discarding whatever stale state a
// follower carried over from a previous leader. A persistent store
// compacts to an empty snapshot rather than journaling the reset.
func (c *MemCache) resetForSync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data = make(map[string][]byte)
	c.counters = make(map[string]int64)
	c.tapLocked(aofReset, "", nil)
	if c.p == nil {
		return nil
	}
	if err := c.p.compact(c.data, c.counters); err != nil {
		return fmt.Errorf("cache: compact after sync reset: %w", err)
	}
	return nil
}

// ---- replication taps ----

// tap feeds encoded mutation records to one replication stream. Sends
// happen under c.mu, in mutation order; a full channel marks the tap
// dead and closes it, forcing the slow follower to reconnect and
// full-resync rather than silently diverge.
type tap struct {
	ch   chan []byte
	dead bool
}

// replTapBuffer is the per-follower backlog tolerated before the tap is
// killed. Sized so a follower a network round-trip behind survives a
// burst, while a wedged one is cut loose quickly.
const replTapBuffer = 1024

// attachTap atomically snapshots the store as a sequence of encoded
// records (reset, every value, every counter as an absolute set) and
// registers a live tap that will observe every mutation after the
// snapshot. The handoff happens under one lock acquisition, so no
// mutation is lost or duplicated between snapshot and stream.
func (c *MemCache) attachTap() (snapshot [][]byte, t *tap) {
	c.mu.Lock()
	defer c.mu.Unlock()
	snapshot = make([][]byte, 0, 1+len(c.data)+len(c.counters))
	snapshot = append(snapshot, appendRecord(nil, aofReset, "", nil))
	for k, v := range c.data {
		snapshot = append(snapshot, appendRecord(nil, aofPut, k, v))
	}
	var buf [8]byte
	for k, v := range c.counters {
		binary.BigEndian.PutUint64(buf[:], uint64(v))
		snapshot = append(snapshot, appendRecord(nil, aofCounterSet, k, buf[:]))
	}
	t = &tap{ch: make(chan []byte, replTapBuffer)}
	if c.taps == nil {
		c.taps = make(map[*tap]struct{})
	}
	c.taps[t] = struct{}{}
	return snapshot, t
}

// detachTap unregisters t; safe to call after an overflow already
// killed it.
func (c *MemCache) detachTap(t *tap) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.taps[t]; !ok {
		return
	}
	delete(c.taps, t)
	if !t.dead {
		t.dead = true
		close(t.ch)
	}
}

// tapLocked fans one mutation record out to every live tap; called with
// c.mu held (which is what makes close-after-overflow safe: no sender
// can race the close). The record is encoded once and shared read-only.
func (c *MemCache) tapLocked(op byte, key string, val []byte) {
	if len(c.taps) == 0 {
		return
	}
	rec := appendRecord(nil, op, key, val)
	for t := range c.taps {
		if t.dead {
			continue
		}
		select {
		case t.ch <- rec:
		default:
			// Follower too far behind: kill the tap. Its stream ends,
			// the connection drops, and the reconnect does a full
			// resync — bounded memory here beats unbounded divergence
			// there.
			t.dead = true
			close(t.ch)
			delete(c.taps, t)
		}
	}
}
