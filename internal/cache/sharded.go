package cache

// ShardedClient spreads the cache keyspace across a cluster of
// stellaris-cached shards (DESIGN.md §11): consistent-hash routing per
// key, batch ops fanned out per shard, and — when a shard's leader
// stops answering — failover onto its follower wired into the same
// retry machinery single-server clients already ride through outages.
//
// Ordering contract: single-key ops route to exactly one shard, so
// per-key ordering matches the single-server client. PutN preserves the
// caller's pair order globally by splitting the batch into contiguous
// same-shard runs and executing the runs sequentially — the delta
// weight publisher's delta→snapshot→head ordering survives sharding
// unchanged. GetN has no ordering obligation and fans out one batch per
// shard, merging results back into request order.
//
// The reserved topology key (cluster.TopologyKey) is handled outside
// the ring: writes go to every shard, reads accept the first answer,
// so the shard map itself survives any single shard loss.

import (
	"errors"
	"sort"
	"sync"
	"time"

	"stellaris/internal/cache/cluster"
	"stellaris/internal/obs"
)

// ShardedStats extends ClientStats with cluster-level recovery events.
type ShardedStats struct {
	ClientStats
	// Failovers counts shard leaders replaced by their follower after
	// transport exhaustion.
	Failovers int64
	// TopologyRefreshes counts newer topology documents adopted (watch
	// or post-failover refresh).
	TopologyRefreshes int64
	// TopologyVersion is the version of the topology currently in use.
	TopologyVersion int
}

// ShardedClient is a Conn backed by a cluster of cache servers. Safe
// for concurrent use.
type ShardedClient struct {
	opts DialOptions
	ring *cluster.Ring

	mu    sync.Mutex
	topo  *cluster.Topology
	slots []*shardSlot

	closed    atomicBool
	failovers obs.Counter
	refreshes obs.Counter

	watchOnce sync.Once
	watchStop chan struct{}
	watchWG   sync.WaitGroup
}

type atomicBool struct {
	mu sync.Mutex
	v  bool
}

func (b *atomicBool) set() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	was := b.v
	b.v = true
	return !was
}

func (b *atomicBool) get() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.v
}

// shardSlot is the mutable per-shard connection state. epoch advances
// on every client swap so concurrent operations that all hit the same
// dead leader trigger exactly one failover between them.
type shardSlot struct {
	id int

	mu       sync.Mutex
	cli      *Client
	addr     string
	follower string
	epoch    int64
}

func (s *shardSlot) client() (*Client, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cli, s.epoch
}

// DialSharded connects to every shard in topo. Like DialWith, the
// initial connects are eager so a misconfigured topology surfaces
// immediately. The topology is cloned; later refreshes never mutate the
// caller's copy.
func DialSharded(topo *cluster.Topology, opts DialOptions) (*ShardedClient, error) {
	ring, err := cluster.NewRing(topo)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	sc := &ShardedClient{
		opts:      opts,
		ring:      ring,
		topo:      topo.Clone(),
		watchStop: make(chan struct{}),
	}
	for _, sh := range sc.topo.Shards {
		cli, err := DialWith(sh.Addr, opts)
		if err != nil {
			for _, s := range sc.slots {
				_ = s.cli.Close()
			}
			return nil, err
		}
		sc.slots = append(sc.slots, &shardSlot{
			id: sh.ID, cli: cli, addr: sh.Addr, follower: sh.Follower,
		})
	}
	return sc, nil
}

// slotFor routes key to its shard. The ring is immutable (failover and
// refresh change addresses, never ownership), so no lock is needed.
func (sc *ShardedClient) slotFor(key string) *shardSlot {
	return sc.slots[sc.ring.Shard(key)]
}

// do runs op against key's shard, failing over onto the follower (and
// retrying once) when the leader is transport-dead.
func (sc *ShardedClient) do(key string, op func(*Client) error) error {
	return sc.doSlot(sc.slotFor(key), op)
}

func (sc *ShardedClient) doSlot(slot *shardSlot, op func(*Client) error) error {
	cli, epoch := slot.client()
	err := op(cli)
	var te *TransportError
	if err == nil || !errors.As(err, &te) {
		return err
	}
	if !sc.failover(slot, epoch) {
		return err
	}
	cli, _ = slot.client()
	return op(cli)
}

// failover promotes slot's follower: dial it, swap it in as the leader
// address, and demote the old leader address to follower position so a
// later failover can swing back if the original process resurrects. The
// epoch check collapses a thundering herd of concurrent failures into
// one promotion. Returns false when there is nothing to promote (no
// follower, follower also dead, client closed, or a concurrent caller
// already failed over — in which case the caller should simply retry).
func (sc *ShardedClient) failover(slot *shardSlot, epoch int64) bool {
	if sc.closed.get() {
		return false
	}
	slot.mu.Lock()
	if slot.epoch != epoch {
		slot.mu.Unlock()
		return true // someone else already promoted; retry on the new client
	}
	follower := slot.follower
	slot.mu.Unlock()
	if follower == "" {
		return false
	}

	// Dial outside the slot lock: a dead follower costs a full
	// DialTimeout and must not wedge concurrent ops on this shard (they
	// will fail their own epoch check afterwards and report the original
	// error).
	cli, err := DialWith(follower, sc.opts)
	if err != nil {
		return false
	}

	slot.mu.Lock()
	if slot.epoch != epoch {
		slot.mu.Unlock()
		_ = cli.Close()
		return true
	}
	old := slot.cli
	slot.cli = cli
	slot.addr, slot.follower = follower, slot.addr
	slot.epoch++
	slot.mu.Unlock()
	_ = old.Close()
	sc.failovers.Inc()

	// Best-effort: record the new leadership in the shared topology so
	// watching clients converge without each one rediscovering the dead
	// leader. Racing failovers publish identical documents, so version
	// collisions are harmless.
	sc.publishPromotion(slot)
	return true
}

// publishPromotion writes a bumped topology reflecting slot's current
// leadership to every reachable shard. Failures are ignored — topology
// publication is an optimization, not a correctness requirement (every
// client can fail over independently).
func (sc *ShardedClient) publishPromotion(slot *shardSlot) {
	sc.mu.Lock()
	t := sc.topo.Clone()
	t.Version++
	for i := range t.Shards {
		if t.Shards[i].ID == slot.id {
			slot.mu.Lock()
			t.Shards[i].Addr, t.Shards[i].Follower = slot.addr, slot.follower
			slot.mu.Unlock()
		}
	}
	sc.topo = t
	sc.refreshes.Inc()
	sc.mu.Unlock()
	if b, err := t.Encode(); err == nil {
		_ = sc.putAll(cluster.TopologyKey, b)
	}
}

// ---- Cache ----

// Put implements Cache. The topology key is written to every shard; all
// other keys route through the ring.
func (sc *ShardedClient) Put(key string, val []byte) error {
	if key == cluster.TopologyKey {
		return sc.putAll(key, val)
	}
	return sc.do(key, func(c *Client) error { return c.Put(key, val) })
}

// Get implements Cache. The topology key is answered by the first shard
// that has it.
func (sc *ShardedClient) Get(key string) ([]byte, error) {
	if key == cluster.TopologyKey {
		return sc.getAny(key)
	}
	var v []byte
	err := sc.do(key, func(c *Client) error {
		var e error
		v, e = c.Get(key)
		return e
	})
	return v, err
}

// Delete implements Cache (topology key: deleted everywhere).
func (sc *ShardedClient) Delete(key string) error {
	if key == cluster.TopologyKey {
		return sc.deleteAll(key)
	}
	return sc.do(key, func(c *Client) error { return c.Delete(key) })
}

// Incr implements Cache.
func (sc *ShardedClient) Incr(key string) (int64, error) {
	var v int64
	err := sc.do(key, func(c *Client) error {
		var e error
		v, e = c.Incr(key)
		return e
	})
	return v, err
}

// Keys implements Cache: fan out to every shard, merge sorted, dedupe
// (the topology key legitimately exists on all shards).
func (sc *ShardedClient) Keys(prefix string) ([]string, error) {
	var all []string
	for _, slot := range sc.slots {
		err := sc.doSlot(slot, func(c *Client) error {
			ks, e := c.Keys(prefix)
			if e == nil {
				all = append(all, ks...)
			}
			return e
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(all)
	out := all[:0]
	for i, k := range all {
		if i == 0 || k != all[i-1] {
			out = append(out, k)
		}
	}
	return out, nil
}

// Len implements Cache as the sum of per-shard lengths. Keys replicated
// to every shard (the topology key) are counted once per shard — Len is
// a capacity gauge, not an exact cardinality, and the existing
// interface has no way to dedupe counts without a full key scan.
func (sc *ShardedClient) Len() (int, error) {
	total := 0
	for _, slot := range sc.slots {
		err := sc.doSlot(slot, func(c *Client) error {
			n, e := c.Len()
			if e == nil {
				total += n
			}
			return e
		})
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}

// ---- Batcher ----

// PutN implements Batcher. The batch splits into contiguous same-shard
// runs executed sequentially, preserving the caller's global pair order
// (see the package comment: the weight publisher depends on it).
func (sc *ShardedClient) PutN(kvs []KV) error {
	if len(kvs) == 0 {
		return nil
	}
	for start := 0; start < len(kvs); {
		slot := sc.slotFor(kvs[start].Key)
		end := start + 1
		for end < len(kvs) && sc.slotFor(kvs[end].Key) == slot {
			end++
		}
		run := kvs[start:end]
		if err := sc.doSlot(slot, func(c *Client) error { return c.PutN(run) }); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// GetN implements Batcher: one batch per shard, results merged back
// into request order; missing keys yield nil entries.
func (sc *ShardedClient) GetN(keys []string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	out := make([][]byte, len(keys))
	perShard := make(map[*shardSlot][]int)
	order := make([]*shardSlot, 0, len(sc.slots))
	for i, k := range keys {
		slot := sc.slotFor(k)
		if _, seen := perShard[slot]; !seen {
			order = append(order, slot)
		}
		perShard[slot] = append(perShard[slot], i)
	}
	for _, slot := range order {
		idx := perShard[slot]
		sub := make([]string, len(idx))
		for j, i := range idx {
			sub[j] = keys[i]
		}
		err := sc.doSlot(slot, func(c *Client) error {
			vals, e := c.GetN(sub)
			if e != nil {
				return e
			}
			for j, i := range idx {
				out[i] = vals[j]
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ---- topology-key fan-out ----

func (sc *ShardedClient) putAll(key string, val []byte) error {
	var firstErr error
	for _, slot := range sc.slots {
		if err := sc.doSlot(slot, func(c *Client) error { return c.Put(key, val) }); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (sc *ShardedClient) deleteAll(key string) error {
	var firstErr error
	for _, slot := range sc.slots {
		if err := sc.doSlot(slot, func(c *Client) error { return c.Delete(key) }); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (sc *ShardedClient) getAny(key string) ([]byte, error) {
	var lastErr error
	for _, slot := range sc.slots {
		var v []byte
		err := sc.doSlot(slot, func(c *Client) error {
			var e error
			v, e = c.Get(key)
			return e
		})
		if err == nil {
			return v, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// ---- Conn plumbing ----

// PayloadCodec implements Conn by delegating to shard 0: the cluster is
// deployed as one unit, so one shard's build answers for all.
func (sc *ShardedClient) PayloadCodec() Codec {
	cli, _ := sc.slots[0].client()
	return cli.PayloadCodec()
}

// Stats implements Conn, aggregating the per-shard clients' counters.
// Clients replaced by failover stop contributing their history, so the
// aggregate can briefly dip; ShardedStats().Failovers records that the
// dip had a cause.
func (sc *ShardedClient) Stats() ClientStats {
	var agg ClientStats
	for _, slot := range sc.slots {
		cli, _ := slot.client()
		st := cli.Stats()
		agg.Retries += st.Retries
		agg.Reconnects += st.Reconnects
		agg.Timeouts += st.Timeouts
	}
	return agg
}

// ShardedStats returns the cluster-level view: aggregated client
// counters plus failovers and topology refreshes.
func (sc *ShardedClient) ShardedStats() ShardedStats {
	sc.mu.Lock()
	ver := sc.topo.Version
	sc.mu.Unlock()
	return ShardedStats{
		ClientStats:       sc.Stats(),
		Failovers:         sc.failovers.Value(),
		TopologyRefreshes: sc.refreshes.Value(),
		TopologyVersion:   ver,
	}
}

// Close implements Conn: stops the topology watch and closes every
// shard client. Idempotent.
func (sc *ShardedClient) Close() error {
	if !sc.closed.set() {
		return nil
	}
	close(sc.watchStop)
	sc.watchWG.Wait()
	var firstErr error
	for _, slot := range sc.slots {
		cli, _ := slot.client()
		if err := cli.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ---- topology refresh ----

// PublishTopology writes t to every shard under cluster.TopologyKey and
// adopts it locally. Use it to seed a fresh cluster or push an
// operator-driven change.
func (sc *ShardedClient) PublishTopology(t *cluster.Topology) error {
	b, err := t.Encode()
	if err != nil {
		return err
	}
	if err := sc.putAll(cluster.TopologyKey, b); err != nil {
		return err
	}
	return sc.adopt(t)
}

// FetchTopology reads the current topology document from the cluster
// (first shard that has it).
func (sc *ShardedClient) FetchTopology() (*cluster.Topology, error) {
	b, err := sc.getAny(cluster.TopologyKey)
	if err != nil {
		return nil, err
	}
	return cluster.Decode(b)
}

// RefreshTopology fetches the shared topology document and adopts it if
// strictly newer than the one in use. Returns whether an adoption
// happened.
func (sc *ShardedClient) RefreshTopology() (bool, error) {
	t, err := sc.FetchTopology()
	if err != nil {
		return false, err
	}
	sc.mu.Lock()
	cur := sc.topo.Version
	sc.mu.Unlock()
	if t.Version <= cur {
		return false, nil
	}
	if err := sc.adopt(t); err != nil {
		return false, err
	}
	return true, nil
}

// adopt installs t: shard addresses are updated in place (dialing new
// leaders eagerly; shards whose new address is unreachable keep their
// current client and heal on a later refresh). The shard ID set must
// match — the ring is fixed at construction, and a topology that adds
// or removes shards would silently re-home keys mid-run.
func (sc *ShardedClient) adopt(t *cluster.Topology) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if len(t.Shards) != len(sc.slots) {
		return errors.New("cache: topology shard count changed; resharding requires a new client")
	}
	byID := make(map[int]cluster.Shard, len(t.Shards))
	for _, sh := range t.Shards {
		byID[sh.ID] = sh
	}
	for _, slot := range sc.slots {
		if _, ok := byID[slot.id]; !ok {
			return errors.New("cache: topology shard ids changed; resharding requires a new client")
		}
	}
	for _, slot := range sc.slots {
		sh := byID[slot.id]
		slot.mu.Lock()
		sameAddr := slot.addr == sh.Addr
		slot.follower = sh.Follower
		slot.mu.Unlock()
		if sameAddr {
			continue
		}
		cli, err := DialWith(sh.Addr, sc.opts)
		if err != nil {
			continue // keep the current client; a later refresh can heal
		}
		slot.mu.Lock()
		old := slot.cli
		slot.cli = cli
		slot.addr = sh.Addr
		slot.epoch++
		slot.mu.Unlock()
		_ = old.Close()
	}
	sc.mu.Lock()
	sc.topo = t.Clone()
	sc.mu.Unlock()
	sc.refreshes.Inc()
	return nil
}

// StartTopologyWatch polls the shared topology document every interval
// and adopts newer versions, so promotions performed by other clients
// (or operators) propagate without waiting for this client to hit the
// dead leader itself. Stopped by Close. Safe to call once; later calls
// are no-ops.
func (sc *ShardedClient) StartTopologyWatch(every time.Duration) {
	if every <= 0 {
		return
	}
	sc.watchOnce.Do(func() {
		sc.watchWG.Add(1)
		go func() {
			defer sc.watchWG.Done()
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					_, _ = sc.RefreshTopology()
				case <-sc.watchStop:
					return
				}
			}
		}()
	})
}

// Interface conformance.
var (
	_ Conn = (*Client)(nil)
	_ Conn = (*ShardedClient)(nil)
)
