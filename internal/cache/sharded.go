package cache

// ShardedClient spreads the cache keyspace across a cluster of
// stellaris-cached shards (DESIGN.md §11): consistent-hash routing per
// key, batch ops fanned out per shard, and — when a shard's leader
// stops answering — failover onto its follower wired into the same
// retry machinery single-server clients already ride through outages.
//
// Ordering contract: single-key ops route to exactly one shard, so
// per-key ordering matches the single-server client. PutN preserves the
// caller's pair order globally by splitting the batch into contiguous
// same-shard runs and executing the runs sequentially — the delta
// weight publisher's delta→snapshot→head ordering survives sharding
// unchanged. GetN has no ordering obligation and fans out one batch per
// shard, merging results back into request order.
//
// The reserved topology key (cluster.TopologyKey) is handled outside
// the ring: writes go to every shard, reads accept the first answer,
// so the shard map itself survives any single shard loss.

import (
	"errors"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"stellaris/internal/cache/cluster"
	"stellaris/internal/obs"
)

// ShardedStats extends ClientStats with cluster-level recovery events.
type ShardedStats struct {
	ClientStats
	// Failovers counts shard leaders replaced by their follower after
	// transport exhaustion (gray-failure evacuations included).
	Failovers int64
	// GrayFailovers counts the subset of Failovers triggered by the
	// health score (alive-but-degraded leader) rather than transport
	// exhaustion.
	GrayFailovers int64
	// TopologyRefreshes counts newer topology documents adopted (watch
	// or post-failover refresh).
	TopologyRefreshes int64
	// TopologyVersion is the version of the topology currently in use.
	TopologyVersion int
	// FencedWrites counts writes refused by a server holding a newer
	// shard term (each forces a topology refresh before the retry).
	FencedWrites int64
	// HedgedReads counts reads raced against a degraded shard's
	// follower.
	HedgedReads int64
	// BreakerOpens counts closed→open circuit-breaker transitions.
	BreakerOpens int64
	// RetryBudgetExhausted counts retries denied by the shared
	// DialOptions.RetryBudget (zero when no budget is installed).
	RetryBudgetExhausted int64
}

// ShardedClient is a Conn backed by a cluster of cache servers. Safe
// for concurrent use.
type ShardedClient struct {
	opts DialOptions
	ring *cluster.Ring

	mu    sync.Mutex
	topo  *cluster.Topology
	slots []*shardSlot

	closed        atomicBool
	failovers     obs.Counter
	grayFailovers obs.Counter
	refreshes     obs.Counter
	fencedWrites  obs.Counter
	hedgedReads   obs.Counter
	breakerOpens  atomic.Int64 // shared with every slot's breaker

	// events mirrors the recovery counters above into the caller's
	// registry as cache_shard_events_total{event,shard} when
	// DialOptions.Obs is set — the per-shard series the fleet collector's
	// derived failover/fence/breaker/hedge rates are computed from. Nil
	// without a registry.
	events *obs.CounterVec

	watchOnce sync.Once
	watchStop chan struct{}
	watchWG   sync.WaitGroup
}

type atomicBool struct {
	mu sync.Mutex
	v  bool
}

func (b *atomicBool) set() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	was := b.v
	b.v = true
	return !was
}

func (b *atomicBool) get() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.v
}

// shardSlot is the mutable per-shard connection state. epoch advances
// on every client swap so concurrent operations that all hit the same
// dead leader trigger exactly one failover between them.
type shardSlot struct {
	id int

	mu       sync.Mutex
	cli      *Client
	addr     string
	follower string
	epoch    int64
	// term is the shard's fencing token as this client believes it:
	// seeded from the topology, bumped on every local promotion, and
	// stamped onto data-plane writes (see fencedDo).
	term int64
	// hcli is a lazily dialed client to the CURRENT follower address,
	// used for hedged reads and follower topology teaching. Invalidated
	// whenever the follower address moves.
	hcli     *Client
	hcliAddr string

	// health and brk self-synchronize; they sit outside slot.mu.
	health *shardHealth
	brk    *breaker
}

func (s *shardSlot) client() (*Client, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cli, s.epoch
}

// DialSharded connects to every shard in topo. Like DialWith, the
// initial connects are eager so a misconfigured topology surfaces
// immediately. The topology is cloned; later refreshes never mutate the
// caller's copy.
func DialSharded(topo *cluster.Topology, opts DialOptions) (*ShardedClient, error) {
	ring, err := cluster.NewRing(topo)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	sc := &ShardedClient{
		opts:      opts,
		ring:      ring,
		topo:      topo.Clone(),
		watchStop: make(chan struct{}),
	}
	if opts.Obs != nil {
		sc.events = opts.Obs.CounterVec("cache_shard_events_total",
			"Cluster recovery events by kind and shard.", "event", "shard")
	}
	for _, sh := range sc.topo.Shards {
		cli, err := DialWith(sh.Addr, opts)
		if err != nil {
			for _, s := range sc.slots {
				_ = s.cli.Close()
			}
			return nil, err
		}
		id := sh.ID
		sc.slots = append(sc.slots, &shardSlot{
			id: id, cli: cli, addr: sh.Addr, follower: sh.Follower,
			term:   sh.Term,
			health: newShardHealth(opts.DegradeWindow),
			brk: newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, &sc.breakerOpens,
				func() { sc.event("breaker-open", id) }),
		})
	}
	return sc, nil
}

// event records one per-shard recovery event into the caller's registry
// (no-op without one).
func (sc *ShardedClient) event(kind string, shard int) {
	if sc.events != nil {
		sc.events.With(kind, strconv.Itoa(shard)).Inc()
	}
}

// slotFor routes key to its shard. The ring is immutable (failover and
// refresh change addresses, never ownership), so no lock is needed.
func (sc *ShardedClient) slotFor(key string) *shardSlot {
	return sc.slots[sc.ring.Shard(key)]
}

// do runs op against key's shard, failing over onto the follower (and
// retrying once) when the leader is transport-dead.
func (sc *ShardedClient) do(key string, op func(*Client) error) error {
	return sc.doSlot(sc.slotFor(key), op)
}

func (sc *ShardedClient) doSlot(slot *shardSlot, op func(*Client) error) error {
	if !slot.brk.allow() {
		return &ErrBreakerOpen{Shard: slot.id}
	}
	cli, epoch := slot.client()
	start := time.Now()
	err := op(cli)
	var te *TransportError
	transport := err != nil && errors.As(err, &te)
	slot.health.note(time.Since(start), transport)
	slot.brk.note(!transport)
	if err == nil {
		// Success — but a persistently slow shard is a gray failure:
		// evacuate it through the same epoch-guarded promotion a dead one
		// gets. The health reset inside failover re-arms the warm-up
		// grace, so a freshly promoted follower cannot be re-judged until
		// a full window of its own ops has accumulated.
		if sc.degraded(slot) {
			sc.failover(slot, epoch, true)
		}
		return nil
	}
	if !transport {
		return err
	}
	if !sc.failover(slot, epoch, false) {
		return err
	}
	cli, _ = slot.client()
	return op(cli)
}

// Health levels from the gray-failure score: suspect shards get their
// reads hedged (latency insurance while the slowdown is mild or still
// being confirmed); degraded shards are evacuated outright.
const (
	healthOK       = iota
	healthSuspect  // latency EWMA past half the threshold: hedge reads
	healthDegraded // past the full threshold (or error rate): evacuate
)

// healthLevel scores slot against the configured gray-failure
// thresholds. Detection is armed only when DegradeLatency is set and
// the observation window has filled.
func (sc *ShardedClient) healthLevel(slot *shardSlot) int {
	if sc.opts.DegradeLatency <= 0 {
		return healthOK
	}
	ewma, errRate, filled := slot.health.snapshot()
	if !filled {
		return healthOK
	}
	rate := sc.opts.DegradeErrorRate
	if rate <= 0 {
		rate = defaultDegradeErrorRate
	}
	switch {
	case ewma >= sc.opts.DegradeLatency || errRate >= rate:
		return healthDegraded
	case ewma >= sc.opts.DegradeLatency/2:
		return healthSuspect
	}
	return healthOK
}

func (sc *ShardedClient) degraded(slot *shardSlot) bool {
	return sc.healthLevel(slot) >= healthDegraded
}

// failover promotes slot's follower: dial it, swap it in as the leader
// address, and demote the old leader address to follower position so a
// later failover can swing back if the original process resurrects. The
// epoch check collapses a thundering herd of concurrent failures into
// one promotion. Returns false when there is nothing to promote (no
// follower, follower also dead, client closed, or a concurrent caller
// already failed over — in which case the caller should simply retry).
// gray marks a promotion triggered by the gray-failure detector rather
// than a transport error; it is counted only when THIS call performs
// the swap, so racing degraded callers cannot inflate GrayFailovers
// past Failovers.
func (sc *ShardedClient) failover(slot *shardSlot, epoch int64, gray bool) bool {
	if sc.closed.get() {
		return false
	}
	slot.mu.Lock()
	if slot.epoch != epoch {
		slot.mu.Unlock()
		return true // someone else already promoted; retry on the new client
	}
	follower := slot.follower
	slot.mu.Unlock()
	if follower == "" {
		return false
	}

	// Dial outside the slot lock: a dead follower costs a full
	// DialTimeout and must not wedge concurrent ops on this shard (they
	// will fail their own epoch check afterwards and report the original
	// error).
	cli, err := DialWith(follower, sc.opts)
	if err != nil {
		return false
	}

	slot.mu.Lock()
	if slot.epoch != epoch {
		slot.mu.Unlock()
		_ = cli.Close()
		return true
	}
	old := slot.cli
	slot.cli = cli
	slot.addr, slot.follower = follower, slot.addr
	slot.epoch++
	// Promotion bumps the shard's fencing term: our writes now carry
	// term+1, which teaches the promoted follower the new term on first
	// contact and fences any client still writing to the old leader
	// under the old term (DESIGN.md §11.5).
	slot.term++
	slot.mu.Unlock()
	_ = old.Close()
	// The new leader starts with a clean health score and a closed
	// breaker — judging it by its predecessor's latencies would
	// evacuate straight back.
	slot.health.reset()
	slot.brk.reset()
	sc.failovers.Inc()
	sc.event("failover", slot.id)
	if gray {
		sc.grayFailovers.Inc()
		sc.event("gray-failover", slot.id)
	}

	// Best-effort: record the new leadership in the shared topology so
	// watching clients converge without each one rediscovering the dead
	// leader. Racing failovers publish identical documents, so version
	// collisions are harmless.
	sc.publishPromotion(slot)
	return true
}

// publishPromotion writes a bumped topology reflecting slot's current
// leadership to every reachable shard. Failures are ignored — topology
// publication is an optimization, not a correctness requirement (every
// client can fail over independently).
func (sc *ShardedClient) publishPromotion(slot *shardSlot) {
	sc.mu.Lock()
	t := sc.topo.Clone()
	t.Version++
	for i := range t.Shards {
		if t.Shards[i].ID == slot.id {
			slot.mu.Lock()
			t.Shards[i].Addr, t.Shards[i].Follower = slot.addr, slot.follower
			t.Shards[i].Term = slot.term
			slot.mu.Unlock()
		}
	}
	sc.topo = t
	sc.refreshes.Inc()
	sc.mu.Unlock()
	if b, err := t.Encode(); err == nil {
		sc.broadcastTopology(b)
	}
}

// ---- term-fenced write routing ----

// fencedDo runs a term-stamped write against slot. A fenced reply
// means this client's topology view predates a promotion: refresh,
// pick up the new term (and possibly the new leader address), and
// retry once. A second fence is surfaced to the caller — by then
// something is publishing terms faster than we can refresh, and
// looping would spin.
func (sc *ShardedClient) fencedDo(slot *shardSlot, op func(c *Client, term int64) error) error {
	slot.mu.Lock()
	term := slot.term
	slot.mu.Unlock()
	err := sc.doSlot(slot, func(c *Client) error { return op(c, term) })
	var fe *ErrFenced
	if !errors.As(err, &fe) {
		return err
	}
	sc.fencedWrites.Inc()
	sc.event("fenced-write", slot.id)
	if _, rerr := sc.RefreshTopology(); rerr != nil {
		return err
	}
	slot.mu.Lock()
	term = slot.term
	slot.mu.Unlock()
	return sc.doSlot(slot, func(c *Client) error { return op(c, term) })
}

// ---- Cache ----

// Put implements Cache. The topology key is written to every shard
// (followers included — it carries the fencing terms); all other keys
// route through the ring as term-stamped writes.
func (sc *ShardedClient) Put(key string, val []byte) error {
	if key == cluster.TopologyKey {
		return sc.broadcastTopology(val)
	}
	slot := sc.slotFor(key)
	return sc.fencedDo(slot, func(c *Client, term int64) error {
		return c.PutFenced(term, key, val)
	})
}

// Get implements Cache. The topology key is answered by the first shard
// that has it; reads on a degraded shard are optionally hedged against
// its follower.
func (sc *ShardedClient) Get(key string) ([]byte, error) {
	if key == cluster.TopologyKey {
		return sc.getAny(key)
	}
	slot := sc.slotFor(key)
	if sc.shouldHedge(slot) {
		if v, err, ok := sc.getHedged(slot, key); ok {
			return v, err
		}
	}
	var v []byte
	err := sc.doSlot(slot, func(c *Client) error {
		var e error
		v, e = c.Get(key)
		return e
	})
	return v, err
}

// Delete implements Cache (topology key: deleted everywhere).
func (sc *ShardedClient) Delete(key string) error {
	if key == cluster.TopologyKey {
		return sc.deleteAll(key)
	}
	slot := sc.slotFor(key)
	return sc.fencedDo(slot, func(c *Client, term int64) error {
		return c.DeleteFenced(term, key)
	})
}

// Incr implements Cache.
func (sc *ShardedClient) Incr(key string) (int64, error) {
	var v int64
	slot := sc.slotFor(key)
	err := sc.fencedDo(slot, func(c *Client, term int64) error {
		var e error
		v, e = c.IncrFenced(term, key)
		return e
	})
	return v, err
}

// Keys implements Cache: fan out to every shard, merge sorted, dedupe
// (the topology key legitimately exists on all shards).
func (sc *ShardedClient) Keys(prefix string) ([]string, error) {
	var all []string
	for _, slot := range sc.slots {
		err := sc.doSlot(slot, func(c *Client) error {
			ks, e := c.Keys(prefix)
			if e == nil {
				all = append(all, ks...)
			}
			return e
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(all)
	out := all[:0]
	for i, k := range all {
		if i == 0 || k != all[i-1] {
			out = append(out, k)
		}
	}
	return out, nil
}

// Len implements Cache as the sum of per-shard lengths. Keys replicated
// to every shard (the topology key) are counted once per shard — Len is
// a capacity gauge, not an exact cardinality, and the existing
// interface has no way to dedupe counts without a full key scan.
func (sc *ShardedClient) Len() (int, error) {
	total := 0
	for _, slot := range sc.slots {
		err := sc.doSlot(slot, func(c *Client) error {
			n, e := c.Len()
			if e == nil {
				total += n
			}
			return e
		})
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}

// ---- Batcher ----

// PutN implements Batcher. The batch splits into contiguous same-shard
// runs executed sequentially, preserving the caller's global pair order
// (see the package comment: the weight publisher depends on it).
func (sc *ShardedClient) PutN(kvs []KV) error {
	if len(kvs) == 0 {
		return nil
	}
	for start := 0; start < len(kvs); {
		slot := sc.slotFor(kvs[start].Key)
		end := start + 1
		for end < len(kvs) && sc.slotFor(kvs[end].Key) == slot {
			end++
		}
		run := kvs[start:end]
		err := sc.fencedDo(slot, func(c *Client, term int64) error {
			return c.PutNFenced(term, run)
		})
		if err != nil {
			return err
		}
		start = end
	}
	return nil
}

// GetN implements Batcher: one batch per shard, results merged back
// into request order; missing keys yield nil entries.
func (sc *ShardedClient) GetN(keys []string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	out := make([][]byte, len(keys))
	perShard := make(map[*shardSlot][]int)
	order := make([]*shardSlot, 0, len(sc.slots))
	for i, k := range keys {
		slot := sc.slotFor(k)
		if _, seen := perShard[slot]; !seen {
			order = append(order, slot)
		}
		perShard[slot] = append(perShard[slot], i)
	}
	for _, slot := range order {
		idx := perShard[slot]
		sub := make([]string, len(idx))
		for j, i := range idx {
			sub[j] = keys[i]
		}
		if sc.shouldHedge(slot) {
			if vals, err, ok := sc.getNHedged(slot, sub); ok {
				if err != nil {
					return nil, err
				}
				for j, i := range idx {
					out[i] = vals[j]
				}
				continue
			}
		}
		err := sc.doSlot(slot, func(c *Client) error {
			vals, e := c.GetN(sub)
			if e != nil {
				return e
			}
			for j, i := range idx {
				out[i] = vals[j]
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ---- hedged reads ----

// shouldHedge reports whether reads on slot should race the follower:
// hedging is enabled, the leader's health score is at least suspect,
// and a follower exists to hedge against.
func (sc *ShardedClient) shouldHedge(slot *shardSlot) bool {
	if !sc.opts.HedgeReads || sc.healthLevel(slot) < healthSuspect {
		return false
	}
	slot.mu.Lock()
	f := slot.follower
	slot.mu.Unlock()
	return f != ""
}

// hedge races op against the slot's leader and follower, returning the
// first successful answer (or, if both fail, the leader's error). The
// losing goroutine is never abandoned mid-channel: the result channel
// is buffered for both, so each sender completes its straight-line
// body — bounded by the client's OpTimeout — and exits. ok=false means
// the follower was undialable and the caller should take the normal
// path.
func (sc *ShardedClient) hedge(slot *shardSlot, op func(*Client) (any, error)) (any, error, bool) {
	fcli := sc.followerClient(slot)
	if fcli == nil {
		return nil, nil, false
	}
	cli, _ := slot.client()
	sc.hedgedReads.Inc()
	sc.event("hedged-read", slot.id)
	type res struct {
		v      any
		err    error
		leader bool
	}
	ch := make(chan res, 2)
	go func() {
		v, err := op(cli)
		ch <- res{v, err, true}
	}()
	go func() {
		v, err := op(fcli)
		ch <- res{v, err, false}
	}()
	first := <-ch
	if first.err == nil {
		return first.v, nil, true
	}
	second := <-ch
	if second.err == nil {
		return second.v, nil, true
	}
	if first.leader {
		return nil, first.err, true
	}
	return nil, second.err, true
}

func (sc *ShardedClient) getHedged(slot *shardSlot, key string) ([]byte, error, bool) {
	v, err, ok := sc.hedge(slot, func(c *Client) (any, error) { return c.Get(key) })
	if !ok || err != nil {
		return nil, err, ok
	}
	return v.([]byte), nil, true
}

func (sc *ShardedClient) getNHedged(slot *shardSlot, keys []string) ([][]byte, error, bool) {
	v, err, ok := sc.hedge(slot, func(c *Client) (any, error) { return c.GetN(keys) })
	if !ok || err != nil {
		return nil, err, ok
	}
	return v.([][]byte), nil, true
}

// followerClient returns a cached client to slot's CURRENT follower
// address, dialing one (outside any lock) when missing or stale. Nil
// when the shard has no follower or the follower is undialable.
func (sc *ShardedClient) followerClient(slot *shardSlot) *Client {
	slot.mu.Lock()
	f := slot.follower
	if slot.hcli != nil && slot.hcliAddr == f {
		c := slot.hcli
		slot.mu.Unlock()
		return c
	}
	stale := slot.hcli
	slot.hcli = nil
	slot.mu.Unlock()
	if stale != nil {
		_ = stale.Close()
	}
	if f == "" {
		return nil
	}
	// A hedge client never retries: its whole purpose is the fast
	// second opinion, and the primary path already owns the backoff
	// schedule.
	hopts := sc.opts
	hopts.Attempts = 1
	hopts.Obs = nil
	cli, err := DialWith(f, hopts)
	if err != nil {
		return nil
	}
	slot.mu.Lock()
	if sc.closed.get() || slot.follower != f || slot.hcli != nil {
		slot.mu.Unlock()
		_ = cli.Close()
		return nil
	}
	slot.hcli, slot.hcliAddr = cli, f
	slot.mu.Unlock()
	return cli
}

// ---- topology-key fan-out ----

// broadcastTopology writes a topology document to every shard leader
// AND every reachable follower. The follower leg is what closes the
// fencing loop: after a promotion the deposed leader sits in the
// follower position of the new topology, and this write — plain,
// never fenced, because control-plane writes must always land — is how
// it learns the new term and starts refusing stale-termed data writes.
// Follower failures are ignored; an unreachable deposed leader is
// fenced by the first 'T' envelope it sees instead.
func (sc *ShardedClient) broadcastTopology(val []byte) error {
	err := sc.putAll(cluster.TopologyKey, val)
	for _, slot := range sc.slots {
		if fc := sc.followerClient(slot); fc != nil {
			_ = fc.Put(cluster.TopologyKey, val)
		}
	}
	return err
}

func (sc *ShardedClient) putAll(key string, val []byte) error {
	var firstErr error
	for _, slot := range sc.slots {
		if err := sc.doSlot(slot, func(c *Client) error { return c.Put(key, val) }); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (sc *ShardedClient) deleteAll(key string) error {
	var firstErr error
	for _, slot := range sc.slots {
		if err := sc.doSlot(slot, func(c *Client) error { return c.Delete(key) }); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// GetAny reads key from the first shard that answers, bypassing hash
// routing. Records written by a process directly into its own shard's
// store — heartbeat self-registrations under KeyObsInstancePrefix — are
// not hash-placed, so discovery readers must scan rather than route.
func (sc *ShardedClient) GetAny(key string) ([]byte, error) {
	return sc.getAny(key)
}

func (sc *ShardedClient) getAny(key string) ([]byte, error) {
	var lastErr error
	for _, slot := range sc.slots {
		var v []byte
		err := sc.doSlot(slot, func(c *Client) error {
			var e error
			v, e = c.Get(key)
			return e
		})
		if err == nil {
			return v, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// ---- Conn plumbing ----

// PayloadCodec implements Conn by delegating to shard 0: the cluster is
// deployed as one unit, so one shard's build answers for all.
func (sc *ShardedClient) PayloadCodec() Codec {
	cli, _ := sc.slots[0].client()
	return cli.PayloadCodec()
}

// Stats implements Conn, aggregating the per-shard clients' counters.
// Clients replaced by failover stop contributing their history, so the
// aggregate can briefly dip; ShardedStats().Failovers records that the
// dip had a cause.
func (sc *ShardedClient) Stats() ClientStats {
	var agg ClientStats
	for _, slot := range sc.slots {
		cli, _ := slot.client()
		st := cli.Stats()
		agg.Retries += st.Retries
		agg.Reconnects += st.Reconnects
		agg.Timeouts += st.Timeouts
	}
	return agg
}

// ShardedStats returns the cluster-level view: aggregated client
// counters plus failovers and topology refreshes.
func (sc *ShardedClient) ShardedStats() ShardedStats {
	sc.mu.Lock()
	ver := sc.topo.Version
	sc.mu.Unlock()
	var exhausted int64
	if sc.opts.RetryBudget != nil {
		exhausted = sc.opts.RetryBudget.Exhausted()
	}
	return ShardedStats{
		ClientStats:          sc.Stats(),
		Failovers:            sc.failovers.Value(),
		GrayFailovers:        sc.grayFailovers.Value(),
		TopologyRefreshes:    sc.refreshes.Value(),
		TopologyVersion:      ver,
		FencedWrites:         sc.fencedWrites.Value(),
		HedgedReads:          sc.hedgedReads.Value(),
		BreakerOpens:         sc.breakerOpens.Load(),
		RetryBudgetExhausted: exhausted,
	}
}

// Close implements Conn: stops the topology watch and closes every
// shard client. Idempotent.
func (sc *ShardedClient) Close() error {
	if !sc.closed.set() {
		return nil
	}
	close(sc.watchStop)
	sc.watchWG.Wait()
	var firstErr error
	for _, slot := range sc.slots {
		slot.mu.Lock()
		cli, hcli := slot.cli, slot.hcli
		slot.hcli = nil
		slot.mu.Unlock()
		if hcli != nil {
			_ = hcli.Close()
		}
		if err := cli.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ---- topology refresh ----

// PublishTopology writes t to every shard under cluster.TopologyKey and
// adopts it locally. Use it to seed a fresh cluster or push an
// operator-driven change.
func (sc *ShardedClient) PublishTopology(t *cluster.Topology) error {
	b, err := t.Encode()
	if err != nil {
		return err
	}
	if err := sc.broadcastTopology(b); err != nil {
		return err
	}
	return sc.adopt(t)
}

// FetchTopology reads the current topology document from the cluster
// (first shard that has it).
func (sc *ShardedClient) FetchTopology() (*cluster.Topology, error) {
	b, err := sc.getAny(cluster.TopologyKey)
	if err != nil {
		return nil, err
	}
	return cluster.Decode(b)
}

// RefreshTopology fetches the shared topology document and adopts it if
// strictly newer than the one in use. Returns whether an adoption
// happened.
func (sc *ShardedClient) RefreshTopology() (bool, error) {
	t, err := sc.FetchTopology()
	if err != nil {
		return false, err
	}
	sc.mu.Lock()
	cur := sc.topo.Version
	sc.mu.Unlock()
	if t.Version <= cur {
		return false, nil
	}
	if err := sc.adopt(t); err != nil {
		return false, err
	}
	return true, nil
}

// adopt installs t: shard addresses are updated in place (dialing new
// leaders eagerly; shards whose new address is unreachable keep their
// current client and heal on a later refresh). The shard ID set must
// match — the ring is fixed at construction, and a topology that adds
// or removes shards would silently re-home keys mid-run.
func (sc *ShardedClient) adopt(t *cluster.Topology) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if len(t.Shards) != len(sc.slots) {
		return errors.New("cache: topology shard count changed; resharding requires a new client")
	}
	byID := make(map[int]cluster.Shard, len(t.Shards))
	for _, sh := range t.Shards {
		byID[sh.ID] = sh
	}
	for _, slot := range sc.slots {
		if _, ok := byID[slot.id]; !ok {
			return errors.New("cache: topology shard ids changed; resharding requires a new client")
		}
	}
	for _, slot := range sc.slots {
		sh := byID[slot.id]
		slot.mu.Lock()
		sameAddr := slot.addr == sh.Addr
		slot.follower = sh.Follower
		if sh.Term > slot.term {
			// Terms only ratchet up: a stale document must never talk a
			// client back into a term a server would fence.
			slot.term = sh.Term
		}
		slot.mu.Unlock()
		if sameAddr {
			continue
		}
		cli, err := DialWith(sh.Addr, sc.opts)
		if err != nil {
			continue // keep the current client; a later refresh can heal
		}
		slot.mu.Lock()
		old := slot.cli
		slot.cli = cli
		slot.addr = sh.Addr
		slot.epoch++
		slot.mu.Unlock()
		_ = old.Close()
	}
	sc.mu.Lock()
	sc.topo = t.Clone()
	sc.mu.Unlock()
	sc.refreshes.Inc()
	return nil
}

// StartTopologyWatch polls the shared topology document every interval
// and adopts newer versions, so promotions performed by other clients
// (or operators) propagate without waiting for this client to hit the
// dead leader itself. Stopped by Close. Safe to call once; later calls
// are no-ops.
func (sc *ShardedClient) StartTopologyWatch(every time.Duration) {
	if every <= 0 {
		return
	}
	sc.watchOnce.Do(func() {
		sc.watchWG.Add(1)
		go func() {
			defer sc.watchWG.Done()
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					_, _ = sc.RefreshTopology()
				case <-sc.watchStop:
					return
				}
			}
		}()
	})
}

// Interface conformance.
var (
	_ Conn = (*Client)(nil)
	_ Conn = (*ShardedClient)(nil)
)
