package serverless

import (
	"math"
	"testing"

	"stellaris/internal/rng"
	"stellaris/internal/simclock"
)

func noJitter() *LatencyModel {
	l := DefaultLatencyModel()
	l.JitterSigma = 0
	l.ColdStartSigma = 0
	l.ColdStartMean = math.Log(1.5) // exact 1.5s cold start
	return l
}

func newTestPlatform(slots int, svls bool) (*simclock.Clock, *Platform) {
	clock := simclock.New()
	p := NewPlatform(clock, noJitter(), 1, PoolConfig{
		Kind:             "learner",
		Instance:         P32xlarge,
		Instances:        1,
		SlotsPerInstance: slots,
		Serverless:       svls,
	})
	return clock, p
}

func TestSlotRate(t *testing.T) {
	want := 3.06 / 3600 / 4
	if got := P32xlarge.SlotRate(4); math.Abs(got-want) > 1e-15 {
		t.Fatalf("SlotRate = %v, want %v", got, want)
	}
	if math.Abs(P32xlarge.SlotRate(0)-3.06/3600) > 1e-15 {
		t.Fatal("zero slots should mean one slot")
	}
}

func TestInstancePresets(t *testing.T) {
	if P32xlarge.HourlyUSD != 3.06 || C6a32xlarge.HourlyUSD != 4.896 ||
		P316xlarge.HourlyUSD != 24.48 || Hpc7a96xlarge.HourlyUSD != 7.2 {
		t.Fatal("instance prices differ from the paper's footnote 2")
	}
	if P316xlarge.GPUs != 8 || C6a32xlarge.CPUCores != 128 || Hpc7a96xlarge.CPUCores != 192 {
		t.Fatal("instance shapes wrong")
	}
}

func TestInvokeColdThenWarm(t *testing.T) {
	clock, p := newTestPlatform(2, true)
	var invs []Invocation
	p.InvokeFixed("learner", 1.0, func(inv Invocation) { invs = append(invs, inv) })
	clock.Run()
	if len(invs) != 1 || !invs[0].Cold {
		t.Fatalf("first invocation should be cold: %+v", invs)
	}
	if math.Abs(invs[0].StartupDelay-1.5) > 1e-9 {
		t.Fatalf("cold start %v, want 1.5", invs[0].StartupDelay)
	}
	// Second invocation reuses the now-warm container.
	p.InvokeFixed("learner", 1.0, func(inv Invocation) { invs = append(invs, inv) })
	clock.Run()
	if len(invs) != 2 || invs[1].Cold {
		t.Fatal("second invocation should be warm")
	}
	if invs[1].StartupDelay >= 1.0 {
		t.Fatalf("warm start %v too slow", invs[1].StartupDelay)
	}
}

func TestPrewarmAvoidsColdStart(t *testing.T) {
	clock, p := newTestPlatform(2, true)
	p.Prewarm("learner", 1)
	var inv Invocation
	p.InvokeFixed("learner", 1.0, func(i Invocation) { inv = i })
	clock.Run()
	if inv.Cold {
		t.Fatal("prewarmed container still cold-started")
	}
}

func TestKeepAliveExpiry(t *testing.T) {
	clock, p := newTestPlatform(2, true)
	p.Prewarm("learner", 1)
	// Wait past the keep-alive window before invoking.
	clock.At(KeepAliveSeconds+1, func() {
		p.InvokeFixed("learner", 1.0, func(inv Invocation) {
			if !inv.Cold {
				t.Error("expired warm container reused")
			}
		})
	})
	clock.Run()
}

func TestCapacityQueuing(t *testing.T) {
	clock, p := newTestPlatform(1, true)
	var done []float64
	for i := 0; i < 3; i++ {
		p.InvokeFixed("learner", 10, func(Invocation) { done = append(done, clock.Now()) })
	}
	clock.Run()
	if len(done) != 3 {
		t.Fatalf("%d completions", len(done))
	}
	// With one slot, completions must be strictly serialized.
	if !(done[0] < done[1] && done[1] < done[2]) {
		t.Fatalf("completions not serialized: %v", done)
	}
	if done[1]-done[0] < 10 || done[2]-done[1] < 10 {
		t.Fatalf("queued work overlapped: %v", done)
	}
	s := p.PoolStats("learner")
	if s.Invocations != 3 {
		t.Fatalf("invocations %d", s.Invocations)
	}
	if s.MeanQueue <= 0 {
		t.Fatal("queue wait not recorded")
	}
}

func TestServerlessCostPerResourceSecond(t *testing.T) {
	clock, p := newTestPlatform(4, true)
	p.Prewarm("learner", 1)
	p.InvokeFixed("learner", 10, func(Invocation) {})
	clock.Run()
	want := 10 * P32xlarge.SlotRate(4)
	if got := p.Cost("learner"); math.Abs(got-want) > 1e-12 {
		t.Fatalf("cost %v, want %v", got, want)
	}
}

func TestServerfulCostByElapsedTime(t *testing.T) {
	clock, p := newTestPlatform(4, false)
	p.InvokeFixed("learner", 10, func(Invocation) {})
	clock.Run()
	elapsed := clock.Now()
	want := P32xlarge.HourlyUSD / 3600 * elapsed
	if got := p.Cost("learner"); math.Abs(got-want) > 1e-12 {
		t.Fatalf("serverful cost %v, want %v", got, want)
	}
}

func TestUtilization(t *testing.T) {
	clock, p := newTestPlatform(2, true)
	p.Prewarm("learner", 2)
	// Both slots busy for ~the entire run → utilization near 1... one
	// slot busy of two → ~0.5.
	p.InvokeFixed("learner", 100, func(Invocation) {})
	clock.Run()
	u := p.Utilization("learner")
	if u < 0.4 || u > 0.6 {
		t.Fatalf("utilization %v, want ~0.5", u)
	}
}

func TestUnknownPoolPanics(t *testing.T) {
	_, p := newTestPlatform(1, true)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown pool accepted")
		}
	}()
	p.InvokeFixed("nope", 1, func(Invocation) {})
}

func TestKinds(t *testing.T) {
	clock := simclock.New()
	p := NewPlatform(clock, noJitter(), 1,
		PoolConfig{Kind: "b", Instance: P32xlarge, Instances: 1, SlotsPerInstance: 1},
		PoolConfig{Kind: "a", Instance: P32xlarge, Instances: 1, SlotsPerInstance: 1},
	)
	ks := p.Kinds()
	if len(ks) != 2 || ks[0] != "a" || ks[1] != "b" {
		t.Fatalf("Kinds = %v", ks)
	}
	if p.TotalCost() != 0 {
		t.Fatal("fresh platform has nonzero cost")
	}
}

func TestLatencyModelScaling(t *testing.T) {
	l := noJitter()
	r := rng.New(1)
	small := l.GradientTime(1000, 100, r)
	big := l.GradientTime(1000, 10000, r)
	if big <= small {
		t.Fatal("gradient time not increasing in samples")
	}
	a1 := l.ActorTime(100, 1000, r)
	a2 := l.ActorTime(1000, 1000, r)
	if a2 <= a1 {
		t.Fatal("actor time not increasing in steps")
	}
	tr1 := l.TransferTime(1000, r)
	tr2 := l.TransferTime(100_000_000, r)
	if tr2 <= tr1 {
		t.Fatal("transfer time not increasing in bytes")
	}
	if l.AggregateTime(4, 100000, r) <= 0 {
		t.Fatal("aggregate time not positive")
	}
}

func TestJitterDistribution(t *testing.T) {
	l := DefaultLatencyModel()
	r := rng.New(2)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += l.jitter(1.0, r)
	}
	mean := sum / n
	// Lognormal with mu=-σ²/2 has mean 1.
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("jitter mean %v, want ~1", mean)
	}
}

func TestEmptyPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-slot pool accepted")
		}
	}()
	NewPlatform(simclock.New(), noJitter(), 1,
		PoolConfig{Kind: "x", Instance: P32xlarge, Instances: 0, SlotsPerInstance: 4})
}

func TestVMPlacementLeastLoaded(t *testing.T) {
	clock := simclock.New()
	p := NewPlatform(clock, noJitter(), 1, PoolConfig{
		Kind: "learner", Instance: P32xlarge, Instances: 3,
		SlotsPerInstance: 2, Serverless: true,
	})
	var vms []int
	for i := 0; i < 6; i++ {
		p.InvokeFixed("learner", 100, func(inv Invocation) { vms = append(vms, inv.VM) })
	}
	clock.Run()
	counts := map[int]int{}
	for _, vm := range vms {
		counts[vm]++
	}
	// Six concurrent invocations over 3 VMs x 2 slots: 2 each.
	for vm := 0; vm < 3; vm++ {
		if counts[vm] != 2 {
			t.Fatalf("vm %d got %d invocations: %v", vm, counts[vm], vms)
		}
	}
}

func TestDurationFnSeesPlacement(t *testing.T) {
	clock := simclock.New()
	p := NewPlatform(clock, noJitter(), 1, PoolConfig{
		Kind: "learner", Instance: P32xlarge, Instances: 2,
		SlotsPerInstance: 1, Serverless: true,
	})
	var sawVM []int
	for i := 0; i < 2; i++ {
		p.Invoke("learner", func(inv Invocation) float64 {
			sawVM = append(sawVM, inv.VM)
			return 1
		}, func(Invocation) {})
	}
	clock.Run()
	if len(sawVM) != 2 || sawVM[0] == sawVM[1] {
		t.Fatalf("duration fn placements %v", sawVM)
	}
}

func TestFailureInjection(t *testing.T) {
	clock, p := newTestPlatform(4, true)
	p.FailureRate = 0.5
	failed, ok := 0, 0
	for i := 0; i < 200; i++ {
		p.InvokeFixed("learner", 0.1, func(inv Invocation) {
			if inv.Failed {
				failed++
			} else {
				ok++
			}
		})
	}
	clock.Run()
	if failed == 0 || ok == 0 {
		t.Fatalf("failure injection degenerate: %d failed, %d ok", failed, ok)
	}
	if failed < 60 || failed > 140 {
		t.Fatalf("failure count %d far from expected ~100", failed)
	}
	if got := p.PoolStats("learner").Failures; got != failed {
		t.Fatalf("stats report %d failures, saw %d", got, failed)
	}
}

func TestFailedInvocationStillBilled(t *testing.T) {
	clock, p := newTestPlatform(1, true)
	p.Prewarm("learner", 1)
	p.FailureRate = 1.0 // always fails
	p.InvokeFixed("learner", 10, func(inv Invocation) {
		if !inv.Failed {
			t.Error("expected failure")
		}
	})
	clock.Run()
	if p.Cost("learner") <= 0 {
		t.Fatal("failed invocation was free")
	}
	// Partial execution: cost below the full 10s price.
	if p.Cost("learner") > 10*P32xlarge.SlotRate(1) {
		t.Fatal("failed invocation billed more than full duration")
	}
}

func TestWarmCountAndQueueDepth(t *testing.T) {
	clock, p := newTestPlatform(1, true)
	p.Prewarm("learner", 3)
	if p.WarmCount("learner") != 3 {
		t.Fatalf("warm count %d", p.WarmCount("learner"))
	}
	p.InvokeFixed("learner", 5, func(Invocation) {})
	p.InvokeFixed("learner", 5, func(Invocation) {})
	if p.QueueDepth("learner") != 1 {
		t.Fatalf("queue depth %d", p.QueueDepth("learner"))
	}
	clock.Run()
}

func TestTierTimeOrdering(t *testing.T) {
	l := noJitter()
	r := rng.New(3)
	const bytes = 1 << 20
	shm := l.TierTime(TierShm, bytes, r)
	rpc := l.TierTime(TierRPC, bytes, r)
	cache := l.TierTime(TierCache, bytes, r)
	if !(shm < rpc && rpc < cache) {
		t.Fatalf("tier ordering violated: shm=%v rpc=%v cache=%v", shm, rpc, cache)
	}
	if TierShm.String() != "shm" || TierRPC.String() != "rpc" || TierCache.String() != "cache" {
		t.Fatal("tier names wrong")
	}
}
