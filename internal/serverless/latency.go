package serverless

import "stellaris/internal/rng"

// LatencyModel converts workload sizes into virtual-time durations. The
// coefficients are calibrated to the magnitudes the paper reports
// (sub-second learner functions on V100s, multi-second actor sampling on
// EPYC cores, <5% overhead for cache and orchestration in Fig. 14), with
// multiplicative lognormal jitter so learner completion times are
// heterogeneous — heterogeneity is what *creates* staleness in
// asynchronous learning, so the jitter term is load-bearing for the
// Fig. 3(b) staleness distributions.
type LatencyModel struct {
	// ColdStartMean/Sigma parameterize lognormal cold starts (seconds).
	ColdStartMean  float64
	ColdStartSigma float64
	// WarmStartSec is the near-constant warm start latency.
	WarmStartSec float64
	// GPUEffFlops is the sustained gradient-computation throughput of a
	// learner slot (FLOP/s).
	GPUEffFlops float64
	// LearnerOverheadSec is fixed per-invocation framework overhead
	// (deserialization, optimizer setup).
	LearnerOverheadSec float64
	// ActorStepSec is seconds per environment step on one actor core.
	ActorStepSec float64
	// CacheRTTSec is one cache round trip.
	CacheRTTSec float64
	// CacheBytesPerSec is cache transfer bandwidth.
	CacheBytesPerSec float64
	// AggPerParamSec is the parameter function's per-parameter
	// aggregation cost.
	AggPerParamSec float64
	// JitterSigma is the lognormal sigma applied multiplicatively to
	// compute durations (0 disables jitter).
	JitterSigma float64

	// Hierarchical data-passing tiers (§V-B). Shm* models same-VM
	// shared-memory exchange; RPC* models direct remote procedure
	// calls between VMs; the Cache* fields above are the third tier.
	ShmLatencySec  float64
	ShmBytesPerSec float64
	RPCLatencySec  float64
	RPCBytesPerSec float64
}

// Tier selects a data-passing path for one transfer.
type Tier int

// Data-passing tiers in decreasing locality.
const (
	// TierShm is same-VM shared memory.
	TierShm Tier = iota
	// TierRPC is a direct VM-to-VM remote procedure call.
	TierRPC
	// TierCache is a round trip through the distributed cache.
	TierCache
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierShm:
		return "shm"
	case TierRPC:
		return "rpc"
	default:
		return "cache"
	}
}

// DefaultLatencyModel returns coefficients matching the paper's testbed
// magnitudes.
func DefaultLatencyModel() *LatencyModel {
	return &LatencyModel{
		ColdStartMean:      0.3, // ln-space mean → ~1.5s median cold start
		ColdStartSigma:     0.35,
		WarmStartSec:       0.08,
		GPUEffFlops:        2.0e12, // V100 at realistic small-batch efficiency
		LearnerOverheadSec: 0.05,
		ActorStepSec:       0.0006, // ~1,600 env steps/s per EPYC core
		CacheRTTSec:        0.0015,
		CacheBytesPerSec:   1.2e9,
		AggPerParamSec:     2.0e-9,
		JitterSigma:        0.25,
		ShmLatencySec:      5e-6,
		ShmBytesPerSec:     20e9,
		RPCLatencySec:      2e-4,
		RPCBytesPerSec:     2.5e9,
	}
}

// jitter applies multiplicative lognormal noise centered at 1.
func (l *LatencyModel) jitter(d float64, r *rng.RNG) float64 {
	if l.JitterSigma <= 0 {
		return d
	}
	return d * r.LogNormal(-0.5*l.JitterSigma*l.JitterSigma, l.JitterSigma)
}

// ColdStart samples a cold-start latency.
func (l *LatencyModel) ColdStart(r *rng.RNG) float64 {
	return r.LogNormal(l.ColdStartMean, l.ColdStartSigma)
}

// WarmStart samples a warm-start latency.
func (l *LatencyModel) WarmStart(r *rng.RNG) float64 {
	return l.jitter(l.WarmStartSec, r)
}

// GradientTime models one learner-function execution: computing a
// gradient over samples timesteps of a model with params parameters
// (forward + backward ≈ 6 FLOP per parameter per sample), plus fixed
// overhead.
func (l *LatencyModel) GradientTime(params, samples int, r *rng.RNG) float64 {
	flops := 6 * float64(params) * float64(samples)
	return l.jitter(l.LearnerOverheadSec+flops/l.GPUEffFlops, r)
}

// ActorTime models sampling `steps` environment timesteps on one actor
// core, including per-step policy inference (2 FLOP per parameter).
func (l *LatencyModel) ActorTime(steps, params int, r *rng.RNG) float64 {
	inference := 2 * float64(params) * float64(steps) / (l.GPUEffFlops / 40) // CPU inference
	return l.jitter(float64(steps)*l.ActorStepSec+inference, r)
}

// TransferTime models moving nbytes through the cache (one RTT plus
// bandwidth-limited payload).
func (l *LatencyModel) TransferTime(nbytes int, r *rng.RNG) float64 {
	return l.TierTime(TierCache, nbytes, r)
}

// TierTime models moving nbytes over the given data-passing tier —
// §V-B's hierarchical messaging: shared memory within a VM, RPC across
// VMs, the distributed cache for persistence.
func (l *LatencyModel) TierTime(tier Tier, nbytes int, r *rng.RNG) float64 {
	var base, bw float64
	switch tier {
	case TierShm:
		base, bw = l.ShmLatencySec, l.ShmBytesPerSec
	case TierRPC:
		base, bw = l.RPCLatencySec, l.RPCBytesPerSec
	default:
		base, bw = l.CacheRTTSec, l.CacheBytesPerSec
	}
	return l.jitter(base+float64(nbytes)/bw, r)
}

// AggregateTime models the parameter function combining nGrads
// gradients of params parameters and applying the optimizer step.
func (l *LatencyModel) AggregateTime(nGrads, params int, r *rng.RNG) float64 {
	return l.jitter(float64(nGrads+1)*float64(params)*l.AggPerParamSec, r)
}
