// Package serverless models the serverless container platform Stellaris
// runs on: pools of (simulated) EC2 instances hosting function slots,
// with cold/warm container starts, keep-alive, pre-warming, capacity
// queuing and the paper's dollar-per-resource-second cost model
// (§VIII-A), all driven by the simclock DES.
package serverless

// InstanceType describes an EC2 instance class used by the paper's
// testbeds, with its published US-East-2 hourly price (footnote 2).
type InstanceType struct {
	Name      string
	HourlyUSD float64
	GPUs      int
	CPUCores  int
}

// The paper's four testbed instance types.
var (
	// P32xlarge hosts one V100; the regular-testbed learner host.
	P32xlarge = InstanceType{Name: "p3.2xlarge", HourlyUSD: 3.06, GPUs: 1, CPUCores: 8}
	// C6a32xlarge is the regular-testbed actor host.
	C6a32xlarge = InstanceType{Name: "c6a.32xlarge", HourlyUSD: 4.896, GPUs: 0, CPUCores: 128}
	// P316xlarge hosts eight V100s; the HPC-cluster learner host.
	P316xlarge = InstanceType{Name: "p3.16xlarge", HourlyUSD: 24.48, GPUs: 8, CPUCores: 64}
	// Hpc7a96xlarge is the HPC-cluster actor host.
	Hpc7a96xlarge = InstanceType{Name: "hpc7a.96xlarge", HourlyUSD: 7.2, GPUs: 0, CPUCores: 192}
)

// SlotRate returns the dollar-per-second price of one function slot when
// the instance is divided into slots concurrent containers — the paper's
// cost unit ("dividing the cost per second ... by the maximum capacity
// of concurrent running learner functions allowed per VM").
func (t InstanceType) SlotRate(slots int) float64 {
	if slots <= 0 {
		slots = 1
	}
	return t.HourlyUSD / 3600 / float64(slots)
}
