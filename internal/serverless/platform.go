package serverless

import (
	"fmt"
	"sort"

	"stellaris/internal/obs"
	"stellaris/internal/rng"
	"stellaris/internal/simclock"
)

// KeepAliveSeconds is how long an idle container stays warm before the
// platform reclaims it — ten minutes, "as the same in OpenWhisk" (§VII).
const KeepAliveSeconds = 600

// PoolConfig sizes one function pool: a homogeneous set of instances
// hosting function slots for one function kind.
type PoolConfig struct {
	// Kind names the function family ("learner", "parameter", "actor").
	Kind string
	// Instance is the backing instance type.
	Instance InstanceType
	// Instances is the number of VMs in the pool.
	Instances int
	// SlotsPerInstance caps concurrent functions per VM (the paper uses
	// four learner functions per V100 GPU).
	SlotsPerInstance int
	// Serverless selects per-invocation billing; false bills the whole
	// pool for elapsed wall time (the serverful baselines).
	Serverless bool
}

// Slots returns the pool-wide concurrency capacity.
func (c PoolConfig) Slots() int { return c.Instances * c.SlotsPerInstance }

// Invocation is passed to the function body when its slot begins
// executing.
type Invocation struct {
	Kind string
	// VM is the index of the instance hosting this invocation within
	// its pool — the placement input to hierarchical data passing
	// (same-VM functions exchange gradients over shared memory, §V-B).
	VM int
	// Submitted is the virtual time Invoke was called.
	Submitted float64
	// Started is when the container began executing (after queueing and
	// startup).
	Started float64
	// StartupDelay is the cold- or warm-start latency paid.
	StartupDelay float64
	// Cold reports whether this invocation paid a cold start.
	Cold bool
	// Failed reports that the invocation crashed (failure injection);
	// its side effects must be discarded and the work retried.
	Failed bool
	// CostUSD is this invocation's bill under the paper's model: zero
	// until completion (the body sees the final value), and zero forever
	// on serverful pools, which bill wall time rather than invocations.
	CostUSD float64
}

// DurationFn computes an invocation's execution time once placement is
// known (the VM index determines data-passing tiers).
type DurationFn func(inv Invocation) float64

type queued struct {
	duration DurationFn
	body     func(inv Invocation)
	at       float64
}

type pool struct {
	cfg       PoolConfig
	busy      int
	busyVM    []int     // busy slots per instance
	warm      []float64 // expiry times of idle warm containers (sorted)
	queue     []queued
	cost      float64
	busyInt   float64 // ∫ busy dt for utilization
	lastT     float64
	invoked   int
	coldHits  int
	failures  int
	queueWait float64
}

// Platform simulates the serverless substrate. All methods must be
// called from DES event context (single goroutine).
type Platform struct {
	Clock *simclock.Clock
	Lat   *LatencyModel
	// FailureRate injects invocation crashes: each invocation fails
	// with this probability at completion time (body runs with
	// inv.Failed set so callers can retry). Zero disables injection.
	FailureRate float64
	r           *rng.RNG
	pools       map[string]*pool
	m           *platformMetrics
}

// platformMetrics is the platform's view into an obs registry. All
// durations are virtual seconds; the registry's clock should be the
// platform's simclock so span/sample timestamps line up.
type platformMetrics struct {
	invocations *obs.CounterVec   // serverless_invocations_total{kind}
	coldStarts  *obs.CounterVec   // serverless_cold_starts_total{kind}
	failures    *obs.CounterVec   // serverless_failures_total{kind}
	invSeconds  *obs.HistogramVec // serverless_invocation_seconds{kind}
	queueWait   *obs.HistogramVec // serverless_queue_wait_seconds{kind}
}

// Instrument publishes per-pool invocation counts, cold starts, injected
// failures, and virtual-time latency histograms into reg.
func (p *Platform) Instrument(reg *obs.Registry) {
	p.m = &platformMetrics{
		invocations: reg.CounterVec("serverless_invocations_total", "function invocations by pool", "kind"),
		coldStarts:  reg.CounterVec("serverless_cold_starts_total", "invocations that paid a cold start", "kind"),
		failures:    reg.CounterVec("serverless_failures_total", "injected invocation crashes", "kind"),
		invSeconds:  reg.HistogramVec("serverless_invocation_seconds", "startup+execution time (virtual seconds)", obs.VirtualBuckets, "kind"),
		queueWait:   reg.HistogramVec("serverless_queue_wait_seconds", "slot queueing delay (virtual seconds)", obs.VirtualBuckets, "kind"),
	}
}

// NewPlatform builds a platform over clock with the given pools.
func NewPlatform(clock *simclock.Clock, lat *LatencyModel, seed uint64, cfgs ...PoolConfig) *Platform {
	p := &Platform{
		Clock: clock,
		Lat:   lat,
		r:     rng.New(seed),
		pools: make(map[string]*pool),
	}
	for _, c := range cfgs {
		if c.Slots() <= 0 {
			panic(fmt.Sprintf("serverless: pool %q has no slots", c.Kind))
		}
		p.pools[c.Kind] = &pool{cfg: c, busyVM: make([]int, c.Instances)}
	}
	return p
}

func (p *Platform) pool(kind string) *pool {
	pl, ok := p.pools[kind]
	if !ok {
		panic(fmt.Sprintf("serverless: unknown pool %q", kind))
	}
	return pl
}

// Prewarm provisions n warm containers in kind's pool, as Stellaris does
// before invoking parameter and learner functions (§VII). Pre-warming is
// free under the paper's cost model.
func (p *Platform) Prewarm(kind string, n int) {
	pl := p.pool(kind)
	for i := 0; i < n; i++ {
		pl.warm = append(pl.warm, p.Clock.Now()+KeepAliveSeconds)
	}
	sort.Float64s(pl.warm)
}

// Invoke submits a function of the given kind. dur computes its
// execution time once the invocation is placed on a VM; body runs (in
// event context) when the function *completes*, with the Invocation
// describing its timing and placement. If the pool is at capacity the
// request queues FIFO.
func (p *Platform) Invoke(kind string, dur DurationFn, body func(inv Invocation)) {
	pl := p.pool(kind)
	now := p.Clock.Now()
	if pl.busy >= pl.cfg.Slots() {
		pl.queue = append(pl.queue, queued{duration: dur, body: body, at: now})
		return
	}
	p.start(pl, queued{duration: dur, body: body, at: now})
}

// InvokeFixed is Invoke with a placement-independent duration.
func (p *Platform) InvokeFixed(kind string, duration float64, body func(inv Invocation)) {
	p.Invoke(kind, func(Invocation) float64 { return duration }, body)
}

// pickVM returns the least-loaded instance index (ties to the lowest
// index, keeping placement deterministic).
func (pl *pool) pickVM() int {
	best := 0
	for i := 1; i < len(pl.busyVM); i++ {
		if pl.busyVM[i] < pl.busyVM[best] {
			best = i
		}
	}
	return best
}

// start launches a queued invocation on a free slot.
func (p *Platform) start(pl *pool, q queued) {
	now := p.Clock.Now()
	p.accrueUtil(pl)
	pl.busy++
	pl.invoked++
	pl.queueWait += now - q.at
	if p.m != nil {
		p.m.invocations.With(pl.cfg.Kind).Inc()
		p.m.queueWait.With(pl.cfg.Kind).Observe(now - q.at)
	}
	vm := pl.pickVM()
	pl.busyVM[vm]++

	// Reap expired warm containers, then take one if available.
	cold := true
	var startup float64
	live := pl.warm[:0]
	for _, exp := range pl.warm {
		if exp > now {
			live = append(live, exp)
		}
	}
	pl.warm = live
	if len(pl.warm) > 0 {
		pl.warm = pl.warm[:len(pl.warm)-1]
		cold = false
		startup = p.Lat.WarmStart(p.r)
	} else {
		startup = p.Lat.ColdStart(p.r)
		pl.coldHits++
		if p.m != nil {
			p.m.coldStarts.With(pl.cfg.Kind).Inc()
		}
	}

	inv := Invocation{
		Kind:         pl.cfg.Kind,
		VM:           vm,
		Submitted:    q.at,
		Started:      now + startup,
		StartupDelay: startup,
		Cold:         cold,
	}
	duration := q.duration(inv)
	if p.FailureRate > 0 && p.r.Float64() < p.FailureRate {
		inv.Failed = true
		// Crashes surface partway through execution.
		duration *= p.r.Float64()
	}
	end := now + startup + duration
	p.Clock.At(end, func() {
		p.accrueUtil(pl)
		pl.busy--
		pl.busyVM[vm]--
		// The container returns to the warm pool with a fresh lease.
		pl.warm = append(pl.warm, p.Clock.Now()+KeepAliveSeconds)
		if pl.cfg.Serverless {
			// Billed per resource-second of execution; startup and
			// keep-alive are free (§VIII-A). Failed invocations are
			// still billed for the time they ran.
			inv.CostUSD = duration * pl.cfg.Instance.SlotRate(pl.cfg.SlotsPerInstance)
			pl.cost += inv.CostUSD
		}
		if inv.Failed {
			pl.failures++
			if p.m != nil {
				p.m.failures.With(pl.cfg.Kind).Inc()
			}
		}
		if p.m != nil {
			p.m.invSeconds.With(pl.cfg.Kind).Observe(startup + duration)
		}
		q.body(inv)
		// Admit queued work freed by this slot.
		if len(pl.queue) > 0 && pl.busy < pl.cfg.Slots() {
			next := pl.queue[0]
			pl.queue = pl.queue[1:]
			p.start(pl, next)
		}
	})
}

// WarmCount returns the number of live warm containers in kind's pool.
func (p *Platform) WarmCount(kind string) int {
	pl := p.pool(kind)
	now := p.Clock.Now()
	n := 0
	for _, exp := range pl.warm {
		if exp > now {
			n++
		}
	}
	return n
}

// QueueDepth returns the number of invocations waiting for a slot.
func (p *Platform) QueueDepth(kind string) int { return len(p.pool(kind).queue) }

// accrueUtil integrates busy-slot time up to now.
func (p *Platform) accrueUtil(pl *pool) {
	now := p.Clock.Now()
	pl.busyInt += float64(pl.busy) * (now - pl.lastT)
	pl.lastT = now
}

// Cost returns the accumulated dollar cost of kind's pool. For
// serverful pools the bill is the whole fleet for elapsed virtual time.
func (p *Platform) Cost(kind string) float64 {
	pl := p.pool(kind)
	if pl.cfg.Serverless {
		return pl.cost
	}
	return float64(pl.cfg.Instances) * pl.cfg.Instance.HourlyUSD / 3600 * p.Clock.Now()
}

// TotalCost sums Cost over all pools. Iteration is in sorted-kind order
// so repeated calls are bit-for-bit reproducible (map order would
// perturb float addition).
func (p *Platform) TotalCost() float64 {
	var total float64
	for _, kind := range p.Kinds() {
		total += p.Cost(kind)
	}
	return total
}

// Utilization returns the busy fraction of kind's slots over elapsed
// virtual time (the paper's GPU-utilization metric in Fig. 3a).
func (p *Platform) Utilization(kind string) float64 {
	pl := p.pool(kind)
	p.accrueUtil(pl)
	elapsed := p.Clock.Now()
	if elapsed <= 0 {
		return 0
	}
	return pl.busyInt / (elapsed * float64(pl.cfg.Slots()))
}

// Stats summarizes a pool's activity.
type Stats struct {
	Kind        string
	Invocations int
	ColdStarts  int
	Failures    int
	MeanQueue   float64
	CostUSD     float64
	Utilization float64
}

// PoolStats returns a snapshot for kind.
func (p *Platform) PoolStats(kind string) Stats {
	pl := p.pool(kind)
	s := Stats{
		Kind:        kind,
		Invocations: pl.invoked,
		ColdStarts:  pl.coldHits,
		Failures:    pl.failures,
		CostUSD:     p.Cost(kind),
		Utilization: p.Utilization(kind),
	}
	if pl.invoked > 0 {
		s.MeanQueue = pl.queueWait / float64(pl.invoked)
	}
	return s
}

// Kinds lists configured pools in sorted order.
func (p *Platform) Kinds() []string {
	out := make([]string, 0, len(p.pools))
	for k := range p.pools {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
