package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"stellaris/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randMat(r *rng.RNG, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

// naiveMul is the reference O(n³) matmul.
func naiveMul(a, b *Mat) *Mat {
	c := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a, b := randMat(r, m, k), randMat(r, k, n)
		got := NewMat(m, n)
		MatMul(got, a, b)
		want := naiveMul(a, b)
		for i := range got.Data {
			if !almostEq(got.Data[i], want.Data[i], 1e-12) {
				t.Fatalf("trial %d: MatMul mismatch at %d: %v vs %v", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func transpose(m *Mat) *Mat {
	tr := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			tr.Set(j, i, m.At(i, j))
		}
	}
	return tr
}

func TestMatMulATBEqualsTransposedMul(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		k, m, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b := randMat(r, k, m), randMat(r, k, n)
		got := NewMat(m, n)
		MatMulATB(got, a, b)
		want := naiveMul(transpose(a), b)
		for i := range got.Data {
			if !almostEq(got.Data[i], want.Data[i], 1e-12) {
				t.Fatalf("ATB mismatch at %d", i)
			}
		}
	}
}

func TestMatMulABTEqualsMulTransposed(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b := randMat(r, m, k), randMat(r, n, k)
		got := NewMat(m, n)
		MatMulABT(got, a, b)
		want := naiveMul(a, transpose(b))
		for i := range got.Data {
			if !almostEq(got.Data[i], want.Data[i], 1e-12) {
				t.Fatalf("ABT mismatch at %d", i)
			}
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MatMul(NewMat(2, 2), NewMat(2, 3), NewMat(2, 3))
}

func TestDotAxpyScale(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	Axpy(2, x, y)
	want := []float64{6, 9, 12}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	Scale(0.5, y)
	for i := range y {
		if y[i] != want[i]/2 {
			t.Fatalf("Scale[%d] = %v", i, y[i])
		}
	}
}

func TestNorm2AndClip(t *testing.T) {
	x := []float64{3, 4}
	if got := Norm2(x); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	orig := ClipNorm(x, 1)
	if orig != 5 {
		t.Fatalf("ClipNorm returned %v, want 5", orig)
	}
	if !almostEq(Norm2(x), 1, 1e-12) {
		t.Fatalf("post-clip norm %v", Norm2(x))
	}
	// maxNorm <= 0 disables clipping.
	y := []float64{3, 4}
	ClipNorm(y, 0)
	if Norm2(y) != 5 {
		t.Fatal("ClipNorm(0) should not rescale")
	}
}

func TestClipNormUnderLimitUnchanged(t *testing.T) {
	x := []float64{0.1, 0.2}
	before := append([]float64(nil), x...)
	ClipNorm(x, 10)
	for i := range x {
		if x[i] != before[i] {
			t.Fatal("ClipNorm rescaled a vector under the limit")
		}
	}
}

func TestMeanStdStandardize(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Mean(x); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Std(x); !almostEq(got, math.Sqrt(1.25), 1e-12) {
		t.Fatalf("Std = %v", got)
	}
	Standardize(x)
	if !almostEq(Mean(x), 0, 1e-12) || !almostEq(Std(x), 1, 1e-9) {
		t.Fatalf("Standardize gave mean %v std %v", Mean(x), Std(x))
	}
}

func TestStandardizeConstantInput(t *testing.T) {
	x := []float64{5, 5, 5}
	Standardize(x) // must not produce NaN
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Standardize of constant produced %v", v)
		}
	}
}

func TestSumRowsAddBias(t *testing.T) {
	m := MatFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 3)
	SumRows(dst, m)
	want := []float64{5, 7, 9}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("SumRows[%d] = %v", i, dst[i])
		}
	}
	AddBiasRows(m, []float64{10, 20, 30})
	if m.At(0, 0) != 11 || m.At(1, 2) != 36 {
		t.Fatalf("AddBiasRows wrong: %v", m.Data)
	}
}

func TestCloneAndZero(t *testing.T) {
	m := MatFrom(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
	m.Zero()
	if m.Data[0] != 0 || m.Data[1] != 0 {
		t.Fatal("Zero failed")
	}
}

func TestMeanEmptyIsZero(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty Mean/Std should be 0")
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// TestMatMulAssociativityProperty checks (A·B)·C == A·(B·C) on random
// small matrices via testing/quick-driven dimensions.
func TestMatMulAssociativityProperty(t *testing.T) {
	r := rng.New(5)
	f := func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		m, k, l, n := 1+rr.Intn(5), 1+rr.Intn(5), 1+rr.Intn(5), 1+rr.Intn(5)
		a, b, c := randMat(r, m, k), randMat(r, k, l), randMat(r, l, n)
		ab := NewMat(m, l)
		MatMul(ab, a, b)
		abc1 := NewMat(m, n)
		MatMul(abc1, ab, c)
		bc := NewMat(k, n)
		MatMul(bc, b, c)
		abc2 := NewMat(m, n)
		MatMul(abc2, a, bc)
		for i := range abc1.Data {
			if !almostEq(abc1.Data[i], abc2.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
