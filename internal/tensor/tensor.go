// Package tensor implements the dense linear-algebra primitives underlying
// Stellaris's neural networks: flat float64 vectors, row-major matrices,
// and the im2col transformation used by the convolutional layers.
//
// The package is deliberately small and allocation-aware rather than
// general: every hot loop in DRL gradient computation reduces to matmul,
// matvec, axpy and elementwise maps over contiguous slices, which the Go
// compiler vectorizes reasonably well.
package tensor

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMat allocates a zeroed Rows x Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dims %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatFrom wraps data as a Rows x Cols matrix without copying.
func MatFrom(rows, cols int, data []float64) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %dx%d", len(data), rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice sharing m's storage.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets all elements of m to zero.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul computes dst = a * b. dst must not alias a or b.
// Shapes: a is m x k, b is k x n, dst is m x n.
func MatMul(dst, a, b *Mat) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%dx%d)*(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	// ikj loop order: streams over b and dst rows for cache friendliness.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				drow[j] += aik * brow[j]
			}
		}
	}
}

// MatMulATB computes dst = aᵀ * b (a is k x m, b is k x n, dst is m x n).
// Used by backward passes to accumulate weight gradients.
func MatMulATB(dst, a, b *Mat) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulATB shape mismatch (%dx%d)ᵀ*(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, aki := range arow {
			if aki == 0 {
				continue
			}
			drow := dst.Row(i)
			for j := range brow {
				drow[j] += aki * brow[j]
			}
		}
	}
}

// MatMulABT computes dst = a * bᵀ (a is m x k, b is n x k, dst is m x n).
// Used by backward passes to propagate deltas through dense layers.
func MatMulABT(dst, a, b *Mat) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulABT shape mismatch (%dx%d)*(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			drow[j] = Dot(arow, b.Row(j))
		}
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Axpy computes y += alpha * x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// Scale computes x *= alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// AddBiasRows adds bias to every row of m.
func AddBiasRows(m *Mat, bias []float64) {
	if len(bias) != m.Cols {
		panic(fmt.Sprintf("tensor: bias length %d != cols %d", len(bias), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, bv := range bias {
			row[j] += bv
		}
	}
}

// SumRows accumulates the column sums of m into dst (dst += colsum).
func SumRows(dst []float64, m *Mat) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: SumRows dst length %d != cols %d", len(dst), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v
		}
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// ClipNorm rescales x in place so its Euclidean norm is at most maxNorm,
// returning the original norm. A non-positive maxNorm disables clipping.
func ClipNorm(x []float64, maxNorm float64) float64 {
	n := Norm2(x)
	if maxNorm > 0 && n > maxNorm {
		Scale(maxNorm/n, x)
	}
	return n
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Std returns the population standard deviation of x.
func Std(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// Standardize shifts and scales x in place to zero mean, unit std.
// A tiny epsilon guards against constant inputs.
func Standardize(x []float64) {
	m, sd := Mean(x), Std(x)
	if sd < 1e-8 {
		sd = 1e-8
	}
	for i := range x {
		x[i] = (x[i] - m) / sd
	}
}
