package tensor

import (
	"testing"
	"testing/quick"

	"stellaris/internal/rng"
)

func TestConvShapeValidate(t *testing.T) {
	s := ConvShape{InC: 3, InH: 44, InW: 44, OutC: 16, KH: 8, KW: 8, Stride: 4}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.OutH != 10 || s.OutW != 10 {
		t.Fatalf("44x44 k8 s4 -> %dx%d, want 10x10", s.OutH, s.OutW)
	}
	s2 := ConvShape{InC: 16, InH: 10, InW: 10, OutC: 32, KH: 4, KW: 4, Stride: 2}
	if err := s2.Validate(); err != nil {
		t.Fatal(err)
	}
	if s2.OutH != 4 || s2.OutW != 4 {
		t.Fatalf("10x10 k4 s2 -> %dx%d, want 4x4", s2.OutH, s2.OutW)
	}
}

func TestConvShapeValidateErrors(t *testing.T) {
	bad := ConvShape{InC: 1, InH: 4, InW: 4, OutC: 1, KH: 8, KW: 8, Stride: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("oversized kernel accepted")
	}
	bad2 := ConvShape{InC: 1, InH: 4, InW: 4, OutC: 1, KH: 2, KW: 2, Stride: 0}
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero stride accepted")
	}
}

func TestIm2ColKnownValues(t *testing.T) {
	// 1-channel 3x3 input, 2x2 kernel, stride 1 -> 4 patches.
	s := ConvShape{InC: 1, InH: 3, InW: 3, OutC: 1, KH: 2, KW: 2, Stride: 1}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	input := []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	cols := NewMat(4, 4)
	s.Im2Col(cols, input)
	want := [][]float64{
		{1, 2, 4, 5},
		{2, 3, 5, 6},
		{4, 5, 7, 8},
		{5, 6, 8, 9},
	}
	for p, row := range want {
		for q, v := range row {
			if cols.At(p, q) != v {
				t.Fatalf("patch %d elem %d = %v, want %v", p, q, cols.At(p, q), v)
			}
		}
	}
}

// TestCol2ImAdjointProperty verifies ⟨Im2Col(x), Y⟩ == ⟨x, Col2Im(Y)⟩,
// the defining property of an adjoint pair — which is exactly what the
// conv backward pass relies on.
func TestCol2ImAdjointProperty(t *testing.T) {
	r := rng.New(7)
	f := func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		s := ConvShape{
			InC: 1 + rr.Intn(3), InH: 4 + rr.Intn(6), InW: 4 + rr.Intn(6),
			OutC: 1, KH: 1 + rr.Intn(3), KW: 1 + rr.Intn(3), Stride: 1 + rr.Intn(2),
		}
		if err := s.Validate(); err != nil {
			return true // skip invalid combos
		}
		x := make([]float64, s.InSize())
		for i := range x {
			x[i] = r.NormFloat64()
		}
		cols := NewMat(s.OutH*s.OutW, s.PatchSize())
		s.Im2Col(cols, x)

		y := NewMat(s.OutH*s.OutW, s.PatchSize())
		for i := range y.Data {
			y.Data[i] = r.NormFloat64()
		}
		lhs := Dot(cols.Data, y.Data)

		back := make([]float64, s.InSize())
		s.Col2Im(back, y)
		rhs := Dot(x, back)
		return almostEq(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCol2ImAccumulates(t *testing.T) {
	s := ConvShape{InC: 1, InH: 2, InW: 2, OutC: 1, KH: 2, KW: 2, Stride: 1}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cols := NewMat(1, 4)
	for i := range cols.Data {
		cols.Data[i] = 1
	}
	d := []float64{5, 0, 0, 0}
	s.Col2Im(d, cols)
	if d[0] != 6 {
		t.Fatalf("Col2Im should accumulate, got %v", d[0])
	}
}
