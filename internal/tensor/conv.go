package tensor

import "fmt"

// ConvShape describes a 2-D convolution over multi-channel square-stride
// input. Layout everywhere is channel-major: input is C x H x W flattened
// as [c*H*W + y*W + x]; output is OutC x OutH x OutW in the same scheme.
type ConvShape struct {
	InC, InH, InW int
	OutC          int
	KH, KW        int
	Stride        int
	OutH, OutW    int // derived; filled by Validate
}

// Validate computes the output spatial dimensions and checks consistency.
// Stellaris uses "valid" convolutions (no padding), matching the paper's
// Atari network (8x8 s4, 4x4 s2).
func (s *ConvShape) Validate() error {
	if s.Stride <= 0 {
		return fmt.Errorf("tensor: conv stride %d must be positive", s.Stride)
	}
	if s.KH > s.InH || s.KW > s.InW {
		return fmt.Errorf("tensor: kernel %dx%d larger than input %dx%d", s.KH, s.KW, s.InH, s.InW)
	}
	s.OutH = (s.InH-s.KH)/s.Stride + 1
	s.OutW = (s.InW-s.KW)/s.Stride + 1
	return nil
}

// InSize returns the flattened input length.
func (s *ConvShape) InSize() int { return s.InC * s.InH * s.InW }

// OutSize returns the flattened output length.
func (s *ConvShape) OutSize() int { return s.OutC * s.OutH * s.OutW }

// PatchSize returns the im2col row width (one receptive field).
func (s *ConvShape) PatchSize() int { return s.InC * s.KH * s.KW }

// Im2Col expands input (len InSize) into dst, a (OutH*OutW) x PatchSize
// matrix whose row p is the receptive field of output position p. The
// convolution then becomes dst * Wᵀ with W of shape OutC x PatchSize.
func (s *ConvShape) Im2Col(dst *Mat, input []float64) {
	if len(input) != s.InSize() {
		panic(fmt.Sprintf("tensor: Im2Col input length %d != %d", len(input), s.InSize()))
	}
	if dst.Rows != s.OutH*s.OutW || dst.Cols != s.PatchSize() {
		panic("tensor: Im2Col dst shape mismatch")
	}
	p := 0
	for oy := 0; oy < s.OutH; oy++ {
		iy0 := oy * s.Stride
		for ox := 0; ox < s.OutW; ox++ {
			ix0 := ox * s.Stride
			row := dst.Row(p)
			q := 0
			for c := 0; c < s.InC; c++ {
				base := c * s.InH * s.InW
				for ky := 0; ky < s.KH; ky++ {
					src := base + (iy0+ky)*s.InW + ix0
					copy(row[q:q+s.KW], input[src:src+s.KW])
					q += s.KW
				}
			}
			p++
		}
	}
}

// Col2Im scatter-adds cols (same shape as Im2Col's dst) back into dInput
// (len InSize), the adjoint of Im2Col. dInput is accumulated, not reset.
func (s *ConvShape) Col2Im(dInput []float64, cols *Mat) {
	if len(dInput) != s.InSize() {
		panic(fmt.Sprintf("tensor: Col2Im dInput length %d != %d", len(dInput), s.InSize()))
	}
	p := 0
	for oy := 0; oy < s.OutH; oy++ {
		iy0 := oy * s.Stride
		for ox := 0; ox < s.OutW; ox++ {
			ix0 := ox * s.Stride
			row := cols.Row(p)
			q := 0
			for c := 0; c < s.InC; c++ {
				base := c * s.InH * s.InW
				for ky := 0; ky < s.KH; ky++ {
					dst := base + (iy0+ky)*s.InW + ix0
					for kx := 0; kx < s.KW; kx++ {
						dInput[dst+kx] += row[q]
						q++
					}
				}
			}
			p++
		}
	}
}
