package tensor

import (
	"testing"

	"stellaris/internal/rng"
)

func benchMats(n int) (*Mat, *Mat, *Mat) {
	r := rng.New(1)
	a, b := randMat(r, n, n), randMat(r, n, n)
	return NewMat(n, n), a, b
}

func BenchmarkMatMul64(b *testing.B) {
	dst, x, y := benchMats(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, x, y)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	dst, x, y := benchMats(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, x, y)
	}
}

func BenchmarkMatMulABT256(b *testing.B) {
	dst, x, y := benchMats(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulABT(dst, x, y)
	}
}

func BenchmarkIm2Col44(b *testing.B) {
	s := ConvShape{InC: 3, InH: 44, InW: 44, OutC: 16, KH: 8, KW: 8, Stride: 4}
	if err := s.Validate(); err != nil {
		b.Fatal(err)
	}
	input := make([]float64, s.InSize())
	cols := NewMat(s.OutH*s.OutW, s.PatchSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Im2Col(cols, input)
	}
}

func BenchmarkDot4096(b *testing.B) {
	r := rng.New(2)
	x := make([]float64, 4096)
	y := make([]float64, 4096)
	for i := range x {
		x[i], y[i] = r.NormFloat64(), r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}
