package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve for Plot.
type Series struct {
	Name   string
	Points []float64
}

// Plot renders line series as an ASCII chart — the text rendition of
// the paper's reward-over-rounds figures. Each series gets a marker
// (1, 2, 3, ...); overlapping cells show the later series' marker.
func Plot(w io.Writer, title string, height, width int, series ...Series) {
	if height < 4 {
		height = 8
	}
	if width < 16 {
		width = 60
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range series {
		for _, v := range s.Points {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		marker := byte('1' + si%9)
		for i, v := range s.Points {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			x := 0
			if maxLen > 1 {
				x = i * (width - 1) / (maxLen - 1)
			}
			y := int((hi - v) / (hi - lo) * float64(height-1))
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			grid[y][x] = marker
		}
	}

	fmt.Fprintln(w, title)
	for y, row := range grid {
		label := ""
		switch y {
		case 0:
			label = fmt.Sprintf("%9.1f", hi)
		case height - 1:
			label = fmt.Sprintf("%9.1f", lo)
		default:
			label = strings.Repeat(" ", 9)
		}
		fmt.Fprintf(w, "%s |%s|\n", label, row)
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", byte('1'+si%9), s.Name))
	}
	fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", 9), strings.Join(legend, "  "))
}
