// Package metrics records training telemetry in the schema of the
// paper's artifact ("training round index, round duration, number of
// learner functions invoked per training iteration, episodes executed,
// evaluation rewards, staleness, and training cost" — Appendix AD), plus
// the histogram and latency-breakdown utilities the figures need.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Round is one row of training output.
type Round struct {
	// Round is the policy-update index.
	Round int
	// DurationSec is virtual seconds spent in the round.
	DurationSec float64
	// Learners is the number of learner-function gradients aggregated.
	Learners int
	// Episodes is the cumulative count of completed episodes.
	Episodes int
	// Reward is the mean episodic return over the evaluation window.
	Reward float64
	// Staleness is the mean staleness of the aggregated group.
	Staleness float64
	// CostUSD is the cumulative training cost.
	CostUSD float64
	// WallSec is the cumulative virtual time.
	WallSec float64
}

// Recorder accumulates round rows.
type Recorder struct {
	Rows []Round
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Add appends one round row.
func (r *Recorder) Add(row Round) { r.Rows = append(r.Rows, row) }

// WriteCSV emits the artifact schema.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"round", "duration_s", "learners", "episodes", "reward", "staleness", "cost_usd", "wall_s",
	}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			strconv.Itoa(row.Round),
			fmt.Sprintf("%.4f", row.DurationSec),
			strconv.Itoa(row.Learners),
			strconv.Itoa(row.Episodes),
			fmt.Sprintf("%.4f", row.Reward),
			fmt.Sprintf("%.4f", row.Staleness),
			fmt.Sprintf("%.6f", row.CostUSD),
			fmt.Sprintf("%.4f", row.WallSec),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FinalReward is the mean reward over the last window rows (the paper's
// "final reward" training-quality metric).
func (r *Recorder) FinalReward(window int) float64 {
	n := len(r.Rows)
	if n == 0 {
		return 0
	}
	if window <= 0 || window > n {
		window = n
	}
	var s float64
	for _, row := range r.Rows[n-window:] {
		s += row.Reward
	}
	return s / float64(window)
}

// TotalCost returns the final cumulative cost.
func (r *Recorder) TotalCost() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	return r.Rows[len(r.Rows)-1].CostUSD
}

// TotalWall returns the final cumulative virtual time.
func (r *Recorder) TotalWall() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	return r.Rows[len(r.Rows)-1].WallSec
}

// Histogram is a simple fixed-bin histogram for the staleness PDFs of
// Fig. 3(b).
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram over integer values.
func NewHistogram() *Histogram { return &Histogram{counts: make(map[int]int)} }

// Observe adds one value.
func (h *Histogram) Observe(v int) {
	h.counts[v]++
	h.total++
}

// ObserveAll adds each value.
func (h *Histogram) ObserveAll(vs []int) {
	for _, v := range vs {
		h.Observe(v)
	}
}

// Total returns the observation count.
func (h *Histogram) Total() int { return h.total }

// PDF returns (value, probability) pairs sorted by value.
func (h *Histogram) PDF() (values []int, probs []float64) {
	for v := range h.counts {
		values = append(values, v)
	}
	sort.Ints(values)
	probs = make([]float64, len(values))
	for i, v := range values {
		probs[i] = float64(h.counts[v]) / float64(h.total)
	}
	return values, probs
}

// Mean returns the mean observed value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s float64
	for v, c := range h.counts {
		s += float64(v * c)
	}
	return s / float64(h.total)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the observations.
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	values, _ := h.PDF()
	target := int(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	cum := 0
	for _, v := range values {
		cum += h.counts[v]
		if cum >= target {
			return v
		}
	}
	return values[len(values)-1]
}

// Breakdown accumulates per-component latency for Fig. 14.
type Breakdown struct {
	Components []string
	totals     map[string]float64
}

// NewBreakdown returns a breakdown over the named components, reported
// in the given order.
func NewBreakdown(components ...string) *Breakdown {
	return &Breakdown{Components: components, totals: make(map[string]float64)}
}

// Add accrues d seconds to component.
func (b *Breakdown) Add(component string, d float64) { b.totals[component] += d }

// Total returns the accumulated seconds for component.
func (b *Breakdown) Total(component string) float64 { return b.totals[component] }

// Shares returns each component's fraction of the grand total, in
// Components order.
func (b *Breakdown) Shares() []float64 {
	var grand float64
	for _, c := range b.Components {
		grand += b.totals[c]
	}
	out := make([]float64, len(b.Components))
	if grand == 0 {
		return out
	}
	for i, c := range b.Components {
		out[i] = b.totals[c] / grand
	}
	return out
}

// MeanStd returns the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}
