package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleRecorder() *Recorder {
	r := NewRecorder()
	for i := 0; i < 5; i++ {
		r.Add(Round{
			Round: i, DurationSec: 1.5, Learners: 2, Episodes: 10 * (i + 1),
			Reward: float64(10 * i), Staleness: 0.5, CostUSD: float64(i) * 0.01,
			WallSec: float64(i) * 1.5,
		})
	}
	return r
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRecorder().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if lines[0] != "round,duration_s,learners,episodes,reward,staleness,cost_usd,wall_s" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,1.5000,2,10,0.0000,0.5000,") {
		t.Fatalf("row 0: %q", lines[1])
	}
}

func TestFinalReward(t *testing.T) {
	r := sampleRecorder() // rewards 0,10,20,30,40
	if got := r.FinalReward(2); got != 35 {
		t.Fatalf("FinalReward(2) = %v", got)
	}
	if got := r.FinalReward(0); got != 20 {
		t.Fatalf("FinalReward(0) = %v (all rows)", got)
	}
	if got := r.FinalReward(100); got != 20 {
		t.Fatalf("oversized window = %v", got)
	}
	if NewRecorder().FinalReward(3) != 0 {
		t.Fatal("empty recorder FinalReward != 0")
	}
}

func TestTotals(t *testing.T) {
	r := sampleRecorder()
	if r.TotalCost() != 0.04 {
		t.Fatalf("TotalCost %v", r.TotalCost())
	}
	if r.TotalWall() != 6 {
		t.Fatalf("TotalWall %v", r.TotalWall())
	}
	empty := NewRecorder()
	if empty.TotalCost() != 0 || empty.TotalWall() != 0 {
		t.Fatal("empty totals nonzero")
	}
}

func TestHistogramPDF(t *testing.T) {
	h := NewHistogram()
	h.ObserveAll([]int{0, 0, 1, 2, 2, 2})
	values, probs := h.PDF()
	if len(values) != 3 || values[0] != 0 || values[2] != 2 {
		t.Fatalf("values %v", values)
	}
	var sum float64
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("PDF sums to %v", sum)
	}
	if probs[2] != 0.5 {
		t.Fatalf("p(2) = %v", probs[2])
	}
	if h.Total() != 6 {
		t.Fatalf("total %d", h.Total())
	}
	if got := h.Mean(); math.Abs(got-7.0/6) > 1e-12 {
		t.Fatalf("mean %v", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(i)
	}
	if q := h.Quantile(0.5); q != 50 {
		t.Fatalf("median %d", q)
	}
	if q := h.Quantile(0.95); q != 95 {
		t.Fatalf("p95 %d", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 %d", q)
	}
	if NewHistogram().Quantile(0.5) != 0 {
		t.Fatal("empty quantile nonzero")
	}
}

func TestBreakdownShares(t *testing.T) {
	b := NewBreakdown("a", "b", "c")
	b.Add("a", 1)
	b.Add("b", 3)
	b.Add("a", 1) // accumulates
	shares := b.Shares()
	if shares[0] != 0.4 || shares[1] != 0.6 || shares[2] != 0 {
		t.Fatalf("shares %v", shares)
	}
	if b.Total("a") != 2 {
		t.Fatalf("Total(a) = %v", b.Total("a"))
	}
	empty := NewBreakdown("x")
	if empty.Shares()[0] != 0 {
		t.Fatal("empty breakdown share nonzero")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || math.Abs(std-2) > 1e-12 {
		t.Fatalf("MeanStd = %v, %v", mean, std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty MeanStd nonzero")
	}
}

func TestPlotRendersSeries(t *testing.T) {
	var buf bytes.Buffer
	Plot(&buf, "test chart", 6, 30,
		Series{Name: "up", Points: []float64{0, 1, 2, 3, 4}},
		Series{Name: "down", Points: []float64{4, 3, 2, 1, 0}},
	)
	out := buf.String()
	if !strings.Contains(out, "test chart") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "1=up") || !strings.Contains(out, "2=down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "4.0") || !strings.Contains(out, "0.0") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Fatal("markers missing")
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	var buf bytes.Buffer
	Plot(&buf, "empty", 6, 30)
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty plot not handled")
	}
	buf.Reset()
	// Constant series must not divide by zero.
	Plot(&buf, "flat", 6, 30, Series{Name: "c", Points: []float64{5, 5, 5}})
	if !strings.Contains(buf.String(), "flat") {
		t.Fatal("flat series not rendered")
	}
	buf.Reset()
	// NaN points are skipped, not crashed on.
	Plot(&buf, "nan", 6, 30, Series{Name: "n", Points: []float64{1, math.NaN(), 3}})
	if !strings.Contains(buf.String(), "nan") {
		t.Fatal("NaN series not rendered")
	}
}

func TestPlotClampsTinyDims(t *testing.T) {
	var buf bytes.Buffer
	Plot(&buf, "tiny", 1, 2, Series{Name: "s", Points: []float64{1, 2}})
	if buf.Len() == 0 {
		t.Fatal("tiny plot empty")
	}
}
