package profile

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestEstimatorBasics(t *testing.T) {
	e := NewEstimator(0.5, 16)
	if e.Count() != 0 || e.EWMA() != 0 || e.Rate() != 0 || e.Concurrency() != 0 {
		t.Fatal("fresh estimator not zero")
	}
	e.Observe(2, 0)
	if e.EWMA() != 2 || e.Mean() != 2 {
		t.Fatalf("first observation: ewma %v mean %v", e.EWMA(), e.Mean())
	}
	e.Observe(4, 1)
	if e.EWMA() != 3 { // 0.5*4 + 0.5*2
		t.Fatalf("ewma %v, want 3", e.EWMA())
	}
	if e.Mean() != 3 {
		t.Fatalf("mean %v, want 3", e.Mean())
	}
}

func TestEstimatorRateLittlesLaw(t *testing.T) {
	e := NewEstimator(0.2, 64)
	// One 2-second invocation arriving every 0.5s → λ=2/s, W≈2 → L≈4.
	for i := 0; i < 100; i++ {
		e.Observe(2, float64(i)*0.5)
	}
	if r := e.Rate(); math.Abs(r-2) > 0.05 {
		t.Fatalf("rate %v, want ~2", r)
	}
	if c := e.Concurrency(); c != 4 {
		t.Fatalf("concurrency %d, want 4", c)
	}
}

func TestEstimatorStd(t *testing.T) {
	e := NewEstimator(0.2, 64)
	for i, d := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		e.Observe(d, float64(i))
	}
	// Sample std of this classic sequence is ~2.138.
	if s := e.Std(); math.Abs(s-2.138) > 0.01 {
		t.Fatalf("std %v", s)
	}
}

func TestEstimatorQuantile(t *testing.T) {
	e := NewEstimator(0.2, 256)
	for i := 1; i <= 100; i++ {
		e.Observe(float64(i), float64(i))
	}
	if q := e.Quantile(0.95); q < 90 || q > 100 {
		t.Fatalf("p95 %v", q)
	}
	if q := e.Quantile(0); q != 1 {
		t.Fatalf("p0 %v", q)
	}
}

func TestEstimatorRingOverwrite(t *testing.T) {
	e := NewEstimator(0.2, 4)
	for i := 0; i < 100; i++ {
		e.Observe(float64(i), float64(i))
	}
	// Quantiles reflect recent values only (ring size 4).
	if q := e.Quantile(0.5); q < 90 {
		t.Fatalf("median %v should reflect recent samples", q)
	}
}

func TestEstimatorAlphaValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("alpha 0 accepted")
		}
	}()
	NewEstimator(0, 8)
}

func TestEstimatorMonotoneCountProperty(t *testing.T) {
	f := func(durs []float64) bool {
		e := NewEstimator(0.3, 32)
		at := 0.0
		n := 0
		for _, d := range durs {
			if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				continue
			}
			e.Observe(d, at)
			at += 0.1
			n++
			if e.Count() != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSetAndSummaries(t *testing.T) {
	s := NewSet()
	s.For("learner").Observe(1, 0)
	s.For("learner").Observe(1, 1)
	s.For("actor").Observe(3, 0)
	sums := s.Summaries()
	if len(sums) != 2 || sums[0].Kind != "actor" || sums[1].Kind != "learner" {
		t.Fatalf("summaries %+v", sums)
	}
	if sums[1].Count != 2 || sums[1].Mean != 1 {
		t.Fatalf("learner summary %+v", sums[1])
	}
	if s.For("learner") != s.For("learner") {
		t.Fatal("For not idempotent")
	}
}

func TestSetConcurrent(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.For("k").Observe(1, float64(i*100+j))
			}
		}(i)
	}
	wg.Wait()
	if s.For("k").Count() != 1600 {
		t.Fatalf("count %d", s.For("k").Count())
	}
}
