// Package profile implements Stellaris's function profiler (§VII):
// online estimation of each function kind's execution time and arrival
// rate, collected in actual training and used to pre-warm containers
// ahead of invocations. The expected number of concurrently running
// functions — Little's law, L = λ·W — sizes the warm pool.
package profile

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Estimator tracks one function kind's duration and arrival statistics.
// Safe for concurrent use.
type Estimator struct {
	mu sync.Mutex
	// alpha is the EWMA smoothing weight for durations.
	alpha float64

	count    int
	ewma     float64
	m2       float64 // Welford accumulator for variance
	mean     float64
	lastAt   float64
	interArr float64 // EWMA of inter-arrival gaps
	samples  []float64
	maxKeep  int
}

// NewEstimator returns an estimator with EWMA weight alpha (0 < alpha
// <= 1; 0.2 is a reasonable default) keeping up to maxKeep samples for
// quantile queries.
func NewEstimator(alpha float64, maxKeep int) *Estimator {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("profile: alpha %v outside (0,1]", alpha))
	}
	if maxKeep <= 0 {
		maxKeep = 1024
	}
	return &Estimator{alpha: alpha, maxKeep: maxKeep}
}

// Observe records one execution: its duration and the (virtual) time it
// was submitted.
func (e *Estimator) Observe(duration, at float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.count++
	if e.count == 1 {
		e.ewma = duration
		e.mean = duration
	} else {
		e.ewma = e.alpha*duration + (1-e.alpha)*e.ewma
		delta := duration - e.mean
		e.mean += delta / float64(e.count)
		e.m2 += delta * (duration - e.mean)
		gap := at - e.lastAt
		if gap >= 0 {
			if e.interArr == 0 {
				e.interArr = gap
			} else {
				e.interArr = e.alpha*gap + (1-e.alpha)*e.interArr
			}
		}
	}
	e.lastAt = at
	if len(e.samples) < e.maxKeep {
		e.samples = append(e.samples, duration)
	} else {
		// Reservoir-free ring overwrite keeps recent behavior.
		e.samples[e.count%e.maxKeep] = duration
	}
}

// Count returns the number of observations.
func (e *Estimator) Count() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.count
}

// EWMA returns the smoothed duration estimate (0 before any data).
func (e *Estimator) EWMA() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ewma
}

// Mean returns the running mean duration.
func (e *Estimator) Mean() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mean
}

// Std returns the running standard deviation of durations.
func (e *Estimator) Std() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.count < 2 {
		return 0
	}
	return math.Sqrt(e.m2 / float64(e.count-1))
}

// Rate returns the estimated arrival rate λ in invocations per second
// (0 before two observations).
func (e *Estimator) Rate() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.interArr <= 0 {
		return 0
	}
	return 1 / e.interArr
}

// Quantile returns the q-quantile (0..1) over the retained samples.
func (e *Estimator) Quantile(q float64) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.samples) == 0 {
		return 0
	}
	s := append([]float64(nil), e.samples...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Concurrency estimates the expected number of simultaneously running
// functions via Little's law (λ·W), rounded up — the warm-pool size the
// pre-warmer maintains.
func (e *Estimator) Concurrency() int {
	lam, w := e.Rate(), e.EWMA()
	if lam <= 0 || w <= 0 {
		return 0
	}
	return int(math.Ceil(lam * w))
}

// Summary is a point-in-time snapshot for reporting.
type Summary struct {
	Kind  string
	Count int
	Mean  float64
	EWMA  float64
	Std   float64
	P95   float64
	Rate  float64
}

// Snapshot captures the estimator state under the given kind label.
func (e *Estimator) Snapshot(kind string) Summary {
	return Summary{
		Kind:  kind,
		Count: e.Count(),
		Mean:  e.Mean(),
		EWMA:  e.EWMA(),
		Std:   e.Std(),
		P95:   e.Quantile(0.95),
		Rate:  e.Rate(),
	}
}

// Set tracks estimators for several function kinds.
type Set struct {
	mu   sync.Mutex
	ests map[string]*Estimator
}

// NewSet returns an empty estimator set.
func NewSet() *Set { return &Set{ests: make(map[string]*Estimator)} }

// For returns (creating if needed) the estimator for kind.
func (s *Set) For(kind string) *Estimator {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.ests[kind]
	if !ok {
		e = NewEstimator(0.2, 512)
		s.ests[kind] = e
	}
	return e
}

// Summaries returns snapshots for all kinds, sorted by kind.
func (s *Set) Summaries() []Summary {
	s.mu.Lock()
	kinds := make([]string, 0, len(s.ests))
	for k := range s.ests {
		kinds = append(kinds, k)
	}
	s.mu.Unlock()
	sort.Strings(kinds)
	out := make([]Summary, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, s.For(k).Snapshot(k))
	}
	return out
}
