# Stellaris-Go build/test entry points. CI (.github/workflows/ci.yml)
# runs exactly these targets so local dev and the gate are identical.

GO ?= go
COVERPROFILE ?= coverage.out
BENCHTIME ?= 100ms
BENCHPKGS ?= . ./internal/nn ./internal/cache
FUZZTIME ?= 5s

.PHONY: build test race cover fmt vet lint bench fuzz-short chaos trace-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the fast test set; the chaos/CNN long runners
# are gated behind testing.Short().
race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -coverprofile=$(COVERPROFILE) -covermode=atomic ./...
	$(GO) tool cover -func=$(COVERPROFILE) | tail -1

# Fails (non-zero exit + file list) if any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Project-specific invariant analyzer (stdlib-only, see DESIGN.md
# "Invariants"): wall-clock reads in DES packages, mixed atomic/plain
# field access, blocking calls under a mutex, global math/rand, and
# silently dropped cache errors. Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/stellaris-lint ./...

# Crash-recovery suite under the race detector, WITHOUT -short so the
# heavy drills run too: checkpoint/resume determinism, supervised-worker
# restarts, durable-cache snapshot+AOF replay, scripted cache
# kill/restart schedules, and the learner-panic + server-bounce chaos
# test (see DESIGN.md "Crash recovery").
chaos:
	$(GO) test -race -count=1 \
		-run 'Chaos|Resume|Supervisor|Lockstep|Recovery|Persist|FaultProxy|FrameParser|Checkpoint|WriteDir|LoadLatest|SaveLoad|Fingerprint|Decode' \
		./internal/live ./internal/cache ./internal/ckpt

# Causal-tracing smoke: short lockstep + DES runs must reconstruct at
# least one fully linked trajectory→gradient→aggregation chain and
# export schema-valid Chrome trace JSON (see DESIGN.md "Causal tracing
# & flight recorder").
trace-smoke:
	$(GO) test -race -count=1 -run 'TraceSmoke|TraceDES' ./internal/live ./internal/core

# Short live fuzz of the cache wire codec and framing. The checked-in
# corpus under internal/cache/testdata/fuzz replays on every plain
# `go test`; this target additionally explores new inputs for
# FUZZTIME per fuzz target (go's -fuzz accepts one target at a time).
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzCodecRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/cache
	$(GO) test -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime $(FUZZTIME) ./internal/cache

# Quick benchmark sweep over the hot-path packages. BENCH_live.txt is
# benchstat-compatible; BENCH_live.json is the same results as JSON (via
# cmd/bench2json). Raise BENCHTIME for stabler numbers.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) $(BENCHPKGS) | tee BENCH_live.txt
	$(GO) run ./cmd/bench2json -o BENCH_live.json < BENCH_live.txt

ci: build fmt vet lint race cover
