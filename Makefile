# Stellaris-Go build/test entry points. CI (.github/workflows/ci.yml)
# runs exactly these targets so local dev and the gate are identical.

GO ?= go
COVERPROFILE ?= coverage.out

.PHONY: build test race cover fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the fast test set; the chaos/CNN long runners
# are gated behind testing.Short().
race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -coverprofile=$(COVERPROFILE) -covermode=atomic ./...
	$(GO) tool cover -func=$(COVERPROFILE) | tail -1

# Fails (non-zero exit + file list) if any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: build fmt vet race cover
