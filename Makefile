# Stellaris-Go build/test entry points. CI (.github/workflows/ci.yml)
# runs exactly these targets so local dev and the gate are identical.

GO ?= go
COVERPROFILE ?= coverage.out
BENCHTIME ?= 100ms
BENCHPKGS ?= . ./internal/nn ./internal/cache
FUZZTIME ?= 5s

.PHONY: build test race cover fmt vet lint leaktest bench bench-compare fuzz-short chaos trace-smoke obsd-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the fast test set; the chaos/CNN long runners
# are gated behind testing.Short().
race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -coverprofile=$(COVERPROFILE) -covermode=atomic ./...
	$(GO) tool cover -func=$(COVERPROFILE) | tail -1

# Fails (non-zero exit + file list) if any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Project-specific invariant analyzer (stdlib-only, see DESIGN.md
# "Invariants"): wall-clock reads in DES packages, mixed atomic/plain
# field access, blocking calls under a mutex (lexically and across call
# chains), lock-order deadlock cycles, leaked goroutines, global
# math/rand, silently dropped cache errors, and stale //lint:allow
# directives. Exits non-zero on any finding; the -budget flag fails the
# run if module analysis outgrows its CI time box.
lint:
	$(GO) run ./cmd/stellaris-lint -budget 120s ./...

# Runtime goroutine-leak sanitizer pass: the suites wired with
# leaktest.Check (cache client/server/replica/sharded, live train and
# recovery, obs HTTP) run race-enabled and WITHOUT -short, so every
# Close/Stop path is exercised and any goroutine outliving its test
# fails the build. This is the dynamic complement of the static
# goroleak check above.
leaktest:
	$(GO) test -race -count=1 ./internal/leaktest ./internal/cache ./internal/live ./internal/obs

# Heavy chaos drills under the race detector, WITHOUT -short: fault
# proxy at aggressive rates, AOF compaction under concurrent load, the
# learner-panic + server-bounce drill (see DESIGN.md "Crash
# recovery"), and the cluster drills (DESIGN.md §11): shard-kill
# failover, the asymmetric-partition drill (deposed leader fenced by
# term, §11.5) and the brownout drill (gray failure detected and
# evacuated, §11.6). The suite is selected by NAME, not a hand-maintained
# regexp: every testing.Short()-gated drill in these packages must be
# called TestChaos* — stellaris-lint's chaosname check enforces it, so
# a new drill cannot silently miss this target. The fast
# recovery/resume tests run in `make race` already.
chaos:
	$(GO) test -race -count=1 -run '^TestChaos' \
		./internal/live ./internal/cache ./internal/ckpt

# Causal-tracing smoke: short lockstep + DES runs must reconstruct at
# least one fully linked trajectory→gradient→aggregation chain and
# export schema-valid Chrome trace JSON (see DESIGN.md "Causal tracing
# & flight recorder").
trace-smoke:
	$(GO) test -race -count=1 -run 'TraceSmoke|TraceDES' ./internal/live ./internal/core

# Fleet telemetry smoke (DESIGN.md §12): the stellaris-obsd daemon
# end-to-end against a live cache server (discovery → scrape → dash),
# the collector's DES virtual-clock suite, the frozen-fixture tolerant
# decode, and the heartbeat lifecycle tests — race-enabled and
# leaktest-checked. The full-cluster fleet drill
# (TestChaosFleetTelemetry) rides in `make chaos` via the TestChaos*
# naming convention.
obsd-smoke:
	$(GO) test -race -count=1 -run 'TestObsd|TestParseFlags|TestDefaultRules|TestSim|TestHeartbeat|TestReadInstances|TestTolerantDecode' \
		./cmd/stellaris-obsd ./internal/obs/fleet ./internal/cache

# Short live fuzz of the cache wire codec and framing. The checked-in
# corpus under internal/cache/testdata/fuzz replays on every plain
# `go test`; this target additionally explores new inputs for
# FUZZTIME per fuzz target (go's -fuzz accepts one target at a time).
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzCodecRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/cache
	$(GO) test -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime $(FUZZTIME) ./internal/cache
	$(GO) test -run '^$$' -fuzz '^FuzzBinCodecRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/cache

# Quick benchmark sweep over the hot-path packages. BENCH_live.txt is
# benchstat-compatible; BENCH_live.json is the same results as JSON (via
# cmd/bench2json). Raise BENCHTIME for stabler numbers.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) $(BENCHPKGS) | tee BENCH_live.txt
	$(GO) run ./cmd/bench2json -o BENCH_live.json < BENCH_live.txt

# Allocation-regression gate: rerun the sweep into BENCH_new.json (the
# committed BENCH_live.json baseline is never overwritten) and fail if
# any benchmark's B/op or allocs/op grew more than MAX_REGRESS vs the
# baseline. ns/op deltas are printed but informational — CI wall time
# is too noisy to gate on.
MAX_REGRESS ?= 20%
bench-compare:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) $(BENCHPKGS) | tee BENCH_new.txt
	$(GO) run ./cmd/bench2json -o BENCH_new.json < BENCH_new.txt
	$(GO) run ./cmd/bench2json -compare BENCH_live.json BENCH_new.json -max-regress $(MAX_REGRESS)

ci: build fmt vet lint race leaktest cover
