// Package stellaris is a Go reproduction of "Stellaris: Staleness-Aware
// Distributed Reinforcement Learning with Serverless Computing"
// (SC 2024): a generic asynchronous-learner paradigm for distributed DRL
// training on serverless infrastructure.
//
// The package trains PPO or IMPACT policies on the bundled benchmark
// environments over a deterministic discrete-event simulation of a
// serverless container platform, implementing the paper's three
// contributions:
//
//   - global importance-sampling truncation across asynchronous
//     learners (Eq. 2),
//   - staleness-aware gradient aggregation with an adaptive threshold
//     β_k = δ_max·d^k and per-gradient learning-rate modulation
//     α₀/δ^{1/v} (Eqs. 3-4),
//   - on-demand serverless learner orchestration with the paper's
//     dollar-per-resource-second cost model.
//
// A minimal run:
//
//	res, err := stellaris.Train(stellaris.Config{Env: "hopper"})
//
// Config zero values reproduce the paper's defaults (Stellaris
// aggregation, d=0.96, v=3, ρ=1.0, 50 rounds). See DESIGN.md for the
// architecture and EXPERIMENTS.md for the reproduced figures.
package stellaris

import (
	"fmt"
	"os"

	"stellaris/internal/cache"
	"stellaris/internal/core"
	"stellaris/internal/live"
)

// Config describes one training run; see core.Config for field docs.
type Config = core.Config

// Result is the output of one training run.
type Result = core.Result

// AggregatorKind selects the gradient aggregation policy.
type AggregatorKind = core.AggregatorKind

// Aggregation policies.
const (
	// AggStellaris is the paper's staleness-aware adaptive aggregation.
	AggStellaris = core.AggStellaris
	// AggSoftsync delays aggregation until a fixed gradient count.
	AggSoftsync = core.AggSoftsync
	// AggSSP bounds staleness by gating fast learners.
	AggSSP = core.AggSSP
	// AggAsync applies gradients immediately with no control.
	AggAsync = core.AggAsync
	// AggSync is fully synchronous aggregation.
	AggSync = core.AggSync
)

// Train runs one configuration to completion and returns its telemetry.
func Train(cfg Config) (*Result, error) {
	t, err := core.NewTrainer(cfg)
	if err != nil {
		return nil, err
	}
	return t.Run()
}

// LiveOptions configures LiveTrain, the operational (non-simulated)
// training mode: real concurrent workers over the TCP distributed cache.
type LiveOptions = live.Options

// LiveReport summarizes a LiveTrain run.
type LiveReport = live.Report

// LiveTrain runs the actor/learner/parameter pipeline as real goroutine
// workers exchanging payloads through a stellaris-cached server (or an
// in-process one when no address is given).
func LiveTrain(opt LiveOptions) (*LiveReport, error) { return live.Train(opt) }

// EvalReport summarizes greedy-policy evaluation rollouts.
type EvalReport = core.EvalReport

// Evaluate rolls out trained weights greedily on cfg's environment.
func Evaluate(cfg Config, weights []float64, episodes int, seed uint64) (*EvalReport, error) {
	return core.Evaluate(cfg, weights, episodes, seed)
}

// SaveWeights writes a trained weight vector (Result.FinalWeights) to a
// checkpoint file.
func SaveWeights(path string, version int, weights []float64) error {
	b, err := cache.EncodeWeights(&cache.WeightsMsg{Version: version, Weights: weights})
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadWeights reads a checkpoint written by SaveWeights, returning the
// recorded version and weight vector (usable as Config.InitWeights).
func LoadWeights(path string) (version int, weights []float64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	msg, err := cache.DecodeWeights(b)
	if err != nil {
		return 0, nil, fmt.Errorf("stellaris: %s: %w", path, err)
	}
	return msg.Version, msg.Weights, nil
}
