package stellaris_test

import (
	"testing"

	"stellaris"
)

func TestTrainSmoke(t *testing.T) {
	res, err := stellaris.Train(stellaris.Config{
		Env: "cartpole", Algo: "ppo", Seed: 1,
		Rounds: 2, UpdatesPerRound: 2,
		NumActors: 4, ActorSteps: 32, BatchSize: 128, Hidden: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds.Rows) != 2 {
		t.Fatalf("rounds %d", len(res.Rounds.Rows))
	}
	if res.TotalCostUSD <= 0 || res.Episodes == 0 {
		t.Fatalf("result not populated: %+v", res)
	}
}

func TestTrainInvalidConfig(t *testing.T) {
	if _, err := stellaris.Train(stellaris.Config{Algo: "nope"}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestAggregatorConstantsExported(t *testing.T) {
	kinds := []stellaris.AggregatorKind{
		stellaris.AggStellaris, stellaris.AggSoftsync, stellaris.AggSSP,
		stellaris.AggAsync, stellaris.AggSync,
	}
	seen := map[stellaris.AggregatorKind]bool{}
	for _, k := range kinds {
		if k == "" || seen[k] {
			t.Fatalf("bad aggregator constant %q", k)
		}
		seen[k] = true
	}
}

func TestSaveLoadWeightsRoundTrip(t *testing.T) {
	res, err := stellaris.Train(stellaris.Config{
		Env: "cartpole", Seed: 2, Rounds: 1, UpdatesPerRound: 2,
		NumActors: 4, ActorSteps: 32, BatchSize: 128, Hidden: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ck.gob"
	if err := stellaris.SaveWeights(path, 7, res.FinalWeights); err != nil {
		t.Fatal(err)
	}
	version, w, err := stellaris.LoadWeights(path)
	if err != nil {
		t.Fatal(err)
	}
	if version != 7 || len(w) != len(res.FinalWeights) {
		t.Fatalf("loaded version %d, %d weights", version, len(w))
	}
	for i := range w {
		if w[i] != res.FinalWeights[i] {
			t.Fatal("weights corrupted through checkpoint")
		}
	}
	// Warm start + evaluate through the public API.
	rep, err := stellaris.Evaluate(stellaris.Config{Env: "cartpole", Hidden: 16}, w, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Episodes != 3 {
		t.Fatalf("eval episodes %d", rep.Episodes)
	}
}

func TestLoadWeightsMissingFile(t *testing.T) {
	if _, _, err := stellaris.LoadWeights("/nonexistent/ck.gob"); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

func TestLiveTrainFacade(t *testing.T) {
	rep, err := stellaris.LiveTrain(stellaris.LiveOptions{
		Env: "cartpole", Seed: 3, Actors: 2, Learners: 1,
		Updates: 2, ActorSteps: 16, BatchSize: 32, Hidden: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Updates < 2 {
		t.Fatalf("live facade completed %d updates", rep.Updates)
	}
}
